package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/distwork"
)

// The lease API is the HTTP face of a distwork store: remote workers
// claim tasks, heartbeat their leases, and return results over the same
// REST idiom as the session API. It is deliberately payload-generic —
// the sweep coordinator serves LeaseAPI[experiments.GridCell]; any
// future distributed consumer of the distwork core gets wire transport
// for free.
//
//	POST /v1/tasks/claim           claim the oldest pending task
//	POST /v1/tasks/claim-batch     claim up to max pending tasks at once
//	POST /v1/tasks/heartbeat-batch renew many leases in one request
//	POST /v1/tasks/finish-batch    settle many tasks in one request
//	GET  /v1/tasks                 list tasks (operator visibility)
//	POST /v1/tasks/{id}/heartbeat  renew the claim lease
//	POST /v1/tasks/{id}/finish     settle the task (done or failed)
//	POST /v1/tasks/{id}/release    return the task to pending
//
// Ownership failures map to status codes: 404 for an unknown task, 409
// for a stale claim (the lease expired and another worker owns the task
// now — the loser's finish is rejected, exactly-once settlement). The
// batch endpoints report per-item outcomes with the same status codes:
// the request itself is 200 as long as it parses, and each item carries
// its own status — one stolen cell must not fail the other N-1 results
// travelling in the same request.

// LeaseAPI serves a distwork store's claim/heartbeat/finish lifecycle
// over HTTP.
type LeaseAPI[P any] struct {
	Store *distwork.Store[P]
}

// Register installs the lease routes on mux.
func (a *LeaseAPI[P]) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/tasks/claim", a.handleClaim)
	mux.HandleFunc("POST /v1/tasks/claim-batch", a.handleClaimBatch)
	mux.HandleFunc("POST /v1/tasks/heartbeat-batch", a.handleHeartbeatBatch)
	mux.HandleFunc("POST /v1/tasks/finish-batch", a.handleFinishBatch)
	mux.HandleFunc("GET /v1/tasks", a.handleList)
	mux.HandleFunc("POST /v1/tasks/{id}/heartbeat", a.handleHeartbeat)
	mux.HandleFunc("POST /v1/tasks/{id}/finish", a.handleFinish)
	mux.HandleFunc("POST /v1/tasks/{id}/release", a.handleRelease)
}

// claimRequest names the worker asking for work.
type claimRequest struct {
	Worker string `json:"worker"`
}

// claimResponse carries the claimed task (null when none was pending),
// whether the store has settled (every task terminal — the worker's
// signal to exit), and the lease the worker must heartbeat within.
type claimResponse[P any] struct {
	Task         *distwork.Task[P] `json:"task"`
	Settled      bool              `json:"settled"`
	LeaseSeconds float64           `json:"lease_seconds"`
}

type finishRequest struct {
	Worker string `json:"worker"`
	Result string `json:"result"`
	Error  string `json:"error,omitempty"`
}

type releaseRequest struct {
	Worker string `json:"worker"`
	Note   string `json:"note,omitempty"`
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		writeError(w, http.StatusBadRequest, "parsing body: %v", err)
		return false
	}
	return true
}

// writeLeaseError maps distwork's ownership errors onto status codes.
func writeLeaseError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, distwork.ErrNotFound):
		writeError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, distwork.ErrNotOwner):
		writeError(w, http.StatusConflict, "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// handleClaim hands the oldest pending task to the asking worker.
// Expired leases are collected first (inside TryClaim), so a crashed
// worker's tasks are stolen here by whichever worker polls next. An
// empty claim is not an error: the worker backs off and retries until
// settled says the whole task set is terminal.
func (a *LeaseAPI[P]) handleClaim(w http.ResponseWriter, r *http.Request) {
	var req claimRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Worker == "" {
		writeError(w, http.StatusBadRequest, "missing worker name")
		return
	}
	resp := claimResponse[P]{LeaseSeconds: a.Store.Lease().Seconds()}
	if t, ok := a.Store.TryClaim(req.Worker); ok {
		resp.Task = &t
	} else {
		resp.Settled = a.Store.Settled()
	}
	writeJSON(w, http.StatusOK, resp)
}

// claimBatchRequest asks for up to Max tasks in one round trip.
type claimBatchRequest struct {
	Worker string `json:"worker"`
	Max    int    `json:"max"`
}

// claimBatchResponse carries the claimed tasks (possibly empty) plus the
// same settled/lease fields as a single claim.
type claimBatchResponse[P any] struct {
	Tasks        []distwork.Task[P] `json:"tasks"`
	Settled      bool               `json:"settled"`
	LeaseSeconds float64            `json:"lease_seconds"`
}

type heartbeatBatchRequest struct {
	Worker string   `json:"worker"`
	IDs    []string `json:"ids"`
}

type finishBatchRequest struct {
	Worker string                `json:"worker"`
	Items  []distwork.FinishItem `json:"items"`
}

// batchItemStatus is one item's outcome inside a 200 batch response:
// the HTTP status the single-task endpoint would have returned.
type batchItemStatus struct {
	Status int    `json:"status"`
	Error  string `json:"error,omitempty"`
}

type batchResponse struct {
	Results []batchItemStatus `json:"results"`
}

// leaseItemStatus maps a per-item distwork error onto the status code
// the corresponding single-task endpoint would have used.
func leaseItemStatus(err error) batchItemStatus {
	switch {
	case err == nil:
		return batchItemStatus{Status: http.StatusOK}
	case errors.Is(err, distwork.ErrNotFound):
		return batchItemStatus{Status: http.StatusNotFound, Error: err.Error()}
	case errors.Is(err, distwork.ErrNotOwner):
		return batchItemStatus{Status: http.StatusConflict, Error: err.Error()}
	default:
		return batchItemStatus{Status: http.StatusInternalServerError, Error: err.Error()}
	}
}

// handleClaimBatch hands out up to max pending tasks in one request —
// the amortized form of handleClaim for workers running many short
// tasks (million-cell sweeps: one round trip per batch, not per cell).
func (a *LeaseAPI[P]) handleClaimBatch(w http.ResponseWriter, r *http.Request) {
	var req claimBatchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Worker == "" {
		writeError(w, http.StatusBadRequest, "missing worker name")
		return
	}
	resp := claimBatchResponse[P]{LeaseSeconds: a.Store.Lease().Seconds()}
	resp.Tasks = a.Store.TryClaimBatch(req.Worker, req.Max)
	if len(resp.Tasks) == 0 {
		resp.Settled = a.Store.Settled()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (a *LeaseAPI[P]) handleHeartbeatBatch(w http.ResponseWriter, r *http.Request) {
	var req heartbeatBatchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	errs := a.Store.HeartbeatBatch(req.Worker, req.IDs)
	resp := batchResponse{Results: make([]batchItemStatus, len(errs))}
	for i, err := range errs {
		resp.Results[i] = leaseItemStatus(err)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleFinishBatch settles many tasks in one request with per-item
// outcomes: a stolen task's 409 rides alongside its batch-mates' 200s.
func (a *LeaseAPI[P]) handleFinishBatch(w http.ResponseWriter, r *http.Request) {
	var req finishBatchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	errs := a.Store.FinishBatch(req.Worker, req.Items)
	resp := batchResponse{Results: make([]batchItemStatus, len(errs))}
	for i, err := range errs {
		resp.Results[i] = leaseItemStatus(err)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (a *LeaseAPI[P]) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, a.Store.List())
}

func (a *LeaseAPI[P]) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req claimRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := a.Store.Heartbeat(r.PathValue("id"), req.Worker); err != nil {
		writeLeaseError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleFinish settles a claimed task: done with the worker's encoded
// result, or failed when the request carries an error message.
func (a *LeaseAPI[P]) handleFinish(w http.ResponseWriter, r *http.Request) {
	var req finishRequest
	if !decodeBody(w, r, &req) {
		return
	}
	id := r.PathValue("id")
	var err error
	if req.Error != "" {
		err = a.Store.Finish(id, req.Worker, req.Result, errors.New(req.Error))
	} else {
		err = a.Store.Finish(id, req.Worker, req.Result, nil)
	}
	if err != nil {
		writeLeaseError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (a *LeaseAPI[P]) handleRelease(w http.ResponseWriter, r *http.Request) {
	var req releaseRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := a.Store.Release(r.PathValue("id"), req.Worker, req.Note); err != nil {
		writeLeaseError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// LeaseClient is the worker-side counterpart of LeaseAPI: typed claim/
// heartbeat/finish/release calls against a coordinator's base URL.
type LeaseClient[P any] struct {
	// Base is the coordinator's URL, e.g. "http://127.0.0.1:9180".
	Base string
	// HTTP overrides the http.Client (default http.DefaultClient).
	HTTP *http.Client
}

func (c *LeaseClient[P]) client() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// post sends a JSON body and decodes a JSON response into out (when
// non-nil). Non-2xx responses become errors carrying the server's
// message and an httpStatus the caller can switch on.
func (c *LeaseClient[P]) post(ctx context.Context, path string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		msg := string(raw)
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		return &LeaseStatusError{Status: resp.StatusCode, Msg: msg}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// LeaseStatusError is a non-2xx lease API response.
type LeaseStatusError struct {
	Status int
	Msg    string
}

func (e *LeaseStatusError) Error() string {
	return fmt.Sprintf("lease api: HTTP %d: %s", e.Status, e.Msg)
}

// Claim asks the coordinator for a task. A nil task with settled=false
// means nothing is pending right now (back off and retry); settled=true
// means the whole task set is terminal and the worker can exit.
func (c *LeaseClient[P]) Claim(ctx context.Context, worker string) (task *distwork.Task[P], settled bool, lease time.Duration, err error) {
	var resp claimResponse[P]
	if err := c.post(ctx, "/v1/tasks/claim", claimRequest{Worker: worker}, &resp); err != nil {
		return nil, false, 0, err
	}
	return resp.Task, resp.Settled, time.Duration(resp.LeaseSeconds * float64(time.Second)), nil
}

// ClaimBatch asks the coordinator for up to max tasks in one round
// trip. An empty slice with settled=false means nothing is pending
// right now; settled=true means the task set is terminal.
func (c *LeaseClient[P]) ClaimBatch(ctx context.Context, worker string, max int) (tasks []distwork.Task[P], settled bool, lease time.Duration, err error) {
	var resp claimBatchResponse[P]
	if err := c.post(ctx, "/v1/tasks/claim-batch", claimBatchRequest{Worker: worker, Max: max}, &resp); err != nil {
		return nil, false, 0, err
	}
	return resp.Tasks, resp.Settled, time.Duration(resp.LeaseSeconds * float64(time.Second)), nil
}

// batchItemErrors converts a batch response into positional errors:
// nil for a 200 item, a *LeaseStatusError otherwise. A response whose
// length does not match n is a protocol error on every position.
func batchItemErrors(resp batchResponse, n int) []error {
	out := make([]error, n)
	if len(resp.Results) != n {
		for i := range out {
			out[i] = fmt.Errorf("lease api: batch response has %d results, want %d", len(resp.Results), n)
		}
		return out
	}
	for i, st := range resp.Results {
		if st.Status != http.StatusOK {
			out[i] = &LeaseStatusError{Status: st.Status, Msg: st.Error}
		}
	}
	return out
}

// HeartbeatBatch renews many leases in one request, returning one error
// slot per id (nil = renewed).
func (c *LeaseClient[P]) HeartbeatBatch(ctx context.Context, worker string, ids []string) ([]error, error) {
	var resp batchResponse
	if err := c.post(ctx, "/v1/tasks/heartbeat-batch", heartbeatBatchRequest{Worker: worker, IDs: ids}, &resp); err != nil {
		return nil, err
	}
	return batchItemErrors(resp, len(ids)), nil
}

// FinishBatch settles many tasks in one request, returning one error
// slot per item (nil = settled; 409 = the task was stolen and the newer
// claim's result won).
func (c *LeaseClient[P]) FinishBatch(ctx context.Context, worker string, items []distwork.FinishItem) ([]error, error) {
	var resp batchResponse
	if err := c.post(ctx, "/v1/tasks/finish-batch", finishBatchRequest{Worker: worker, Items: items}, &resp); err != nil {
		return nil, err
	}
	return batchItemErrors(resp, len(items)), nil
}

// Heartbeat renews the worker's lease on the task.
func (c *LeaseClient[P]) Heartbeat(ctx context.Context, id, worker string) error {
	return c.post(ctx, "/v1/tasks/"+id+"/heartbeat", claimRequest{Worker: worker}, nil)
}

// Finish settles the task: done with result, or failed when taskErr is
// non-empty.
func (c *LeaseClient[P]) Finish(ctx context.Context, id, worker, result, taskErr string) error {
	return c.post(ctx, "/v1/tasks/"+id+"/finish", finishRequest{Worker: worker, Result: result, Error: taskErr}, nil)
}

// Release returns the task to pending with a note.
func (c *LeaseClient[P]) Release(ctx context.Context, id, worker, note string) error {
	return c.post(ctx, "/v1/tasks/"+id+"/release", releaseRequest{Worker: worker, Note: note}, nil)
}
