package httpapi

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/distwork"
)

type leasePayload struct {
	Index int    `json:"index"`
	Name  string `json:"name"`
}

func newLeaseFixture(t *testing.T, lease time.Duration) (*distwork.Store[leasePayload], *LeaseClient[leasePayload]) {
	t.Helper()
	store := distwork.New(distwork.Options[leasePayload]{Lease: lease})
	t.Cleanup(func() { store.Close() })
	mux := http.NewServeMux()
	api := &LeaseAPI[leasePayload]{Store: store}
	api.Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return store, &LeaseClient[leasePayload]{Base: srv.URL, HTTP: srv.Client()}
}

// TestLeaseRoundTrip drives a full claim/heartbeat/finish cycle over
// HTTP and pins the wire-level settlement signal.
func TestLeaseRoundTrip(t *testing.T) {
	store, client := newLeaseFixture(t, time.Minute)
	ctx := context.Background()

	// Empty store: no task, not settled... an empty store is settled by
	// definition (nothing outstanding), which is also the worker's exit
	// signal when it arrives after the grid completed.
	task, settled, lease, err := client.Claim(ctx, "w1")
	if err != nil {
		t.Fatal(err)
	}
	if task != nil || !settled {
		t.Fatalf("empty store claim: task=%v settled=%v", task, settled)
	}
	if lease != time.Minute {
		t.Fatalf("lease: got %v, want 1m", lease)
	}

	if _, err := store.Submit(leasePayload{Index: 0, Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Submit(leasePayload{Index: 1, Name: "b"}); err != nil {
		t.Fatal(err)
	}

	task, settled, _, err = client.Claim(ctx, "w1")
	if err != nil {
		t.Fatal(err)
	}
	if task == nil || settled {
		t.Fatalf("claim: task=%v settled=%v", task, settled)
	}
	if task.Payload.Index != 0 || task.Payload.Name != "a" || task.Worker != "w1" {
		t.Fatalf("claimed task: %+v", task)
	}
	if err := client.Heartbeat(ctx, task.ID, "w1"); err != nil {
		t.Fatal(err)
	}
	if err := client.Finish(ctx, task.ID, "w1", `{"v":42}`, ""); err != nil {
		t.Fatal(err)
	}
	got, _ := store.Get(task.ID)
	if got.State != distwork.StateDone || got.Result != `{"v":42}` {
		t.Fatalf("after finish: %+v", got)
	}

	// Second task fails remotely.
	task2, _, _, err := client.Claim(ctx, "w1")
	if err != nil || task2 == nil {
		t.Fatalf("claim 2: %v %v", task2, err)
	}
	if err := client.Finish(ctx, task2.ID, "w1", "", "engine exploded"); err != nil {
		t.Fatal(err)
	}
	got2, _ := store.Get(task2.ID)
	if got2.State != distwork.StateFailed || got2.Error != "engine exploded" {
		t.Fatalf("after failed finish: %+v", got2)
	}

	// Everything terminal: the next claim reports settled.
	task, settled, _, err = client.Claim(ctx, "w1")
	if err != nil || task != nil || !settled {
		t.Fatalf("settled claim: task=%v settled=%v err=%v", task, settled, err)
	}
}

// TestLeaseOwnershipStatusCodes pins the error mapping: 404 unknown
// task, 409 stale claim.
func TestLeaseOwnershipStatusCodes(t *testing.T) {
	store, client := newLeaseFixture(t, time.Minute)
	ctx := context.Background()

	err := client.Heartbeat(ctx, "t999999", "w1")
	var st *LeaseStatusError
	if !asLeaseStatus(err, &st) || st.Status != http.StatusNotFound {
		t.Fatalf("unknown task: %v", err)
	}

	if _, err := store.Submit(leasePayload{Index: 0}); err != nil {
		t.Fatal(err)
	}
	task, _, _, err := client.Claim(ctx, "w1")
	if err != nil || task == nil {
		t.Fatalf("claim: %v %v", task, err)
	}
	err = client.Finish(ctx, task.ID, "w2", "r", "")
	if !asLeaseStatus(err, &st) || st.Status != http.StatusConflict {
		t.Fatalf("foreign finish: %v", err)
	}
	// The rightful owner still settles fine.
	if err := client.Finish(ctx, task.ID, "w1", "r", ""); err != nil {
		t.Fatal(err)
	}
}

// TestLeaseStealOverHTTP exercises the distributed work-stealing path: a
// worker claims over HTTP and dies silently; after lease expiry another
// worker claims the same task, and the dead worker's late finish is
// rejected with 409.
func TestLeaseStealOverHTTP(t *testing.T) {
	store, client := newLeaseFixture(t, 30*time.Millisecond)
	ctx := context.Background()
	if _, err := store.Submit(leasePayload{Index: 0}); err != nil {
		t.Fatal(err)
	}
	task, _, _, err := client.Claim(ctx, "w-dead")
	if err != nil || task == nil {
		t.Fatalf("claim: %v %v", task, err)
	}
	// w-dead never heartbeats. Poll until the lease lapses and w-live
	// steals the task.
	deadline := time.Now().Add(5 * time.Second)
	var stolen *distwork.Task[leasePayload]
	for {
		stolen, _, _, err = client.Claim(ctx, "w-live")
		if err != nil {
			t.Fatal(err)
		}
		if stolen != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("steal never happened")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if stolen.ID != task.ID || stolen.Attempts != 2 {
		t.Fatalf("stolen task: %+v", stolen)
	}
	// The dead worker wakes up and tries to finish: exactly-once
	// settlement rejects it.
	err = client.Finish(ctx, task.ID, "w-dead", "stale", "")
	var st *LeaseStatusError
	if !asLeaseStatus(err, &st) || st.Status != http.StatusConflict {
		t.Fatalf("stale finish: %v", err)
	}
	if err := client.Finish(ctx, task.ID, "w-live", "fresh", ""); err != nil {
		t.Fatal(err)
	}
	got, _ := store.Get(task.ID)
	if got.Result != "fresh" {
		t.Fatalf("result: %q, want the stealing worker's", got.Result)
	}
}

// TestLeaseRelease pins the graceful-release path and concurrent client
// safety under -race.
func TestLeaseRelease(t *testing.T) {
	store, client := newLeaseFixture(t, time.Minute)
	ctx := context.Background()
	const n = 12
	for i := 0; i < n; i++ {
		if _, err := store.Submit(leasePayload{Index: i}); err != nil {
			t.Fatal(err)
		}
	}
	task, _, _, err := client.Claim(ctx, "w1")
	if err != nil || task == nil {
		t.Fatalf("claim: %v %v", task, err)
	}
	if err := client.Release(ctx, task.ID, "w1", "shutting down"); err != nil {
		t.Fatal(err)
	}
	got, _ := store.Get(task.ID)
	if got.State != distwork.StatePending || got.Note != "shutting down" {
		t.Fatalf("after release: %+v", got)
	}

	// A small fleet drains the store concurrently.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := string(rune('a' + w))
			for {
				task, settled, _, err := client.Claim(ctx, name)
				if err != nil {
					t.Errorf("claim: %v", err)
					return
				}
				if task == nil {
					if settled {
						return
					}
					time.Sleep(time.Millisecond)
					continue
				}
				if err := client.Finish(ctx, task.ID, name, "ok", ""); err != nil {
					t.Errorf("finish: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	counts := store.Counts()
	if counts[distwork.StateDone] != n {
		t.Fatalf("done: %d, want %d (counts %v)", counts[distwork.StateDone], n, counts)
	}
}

func asLeaseStatus(err error, st **LeaseStatusError) bool {
	if err == nil {
		return false
	}
	e, ok := err.(*LeaseStatusError)
	if ok {
		*st = e
	}
	return ok
}

// TestBatchLeaseOverHTTP drives the batched wire protocol end to end:
// claim-batch hands out oldest-first, heartbeat-batch and finish-batch
// carry per-item outcomes, and a stolen cell's 409 rides alongside its
// batch-mates' successes without failing the request.
func TestBatchLeaseOverHTTP(t *testing.T) {
	store, client := newLeaseFixture(t, 40*time.Millisecond)
	ctx := context.Background()
	const n = 6
	for i := 0; i < n; i++ {
		if _, err := store.Submit(leasePayload{Index: i}); err != nil {
			t.Fatal(err)
		}
	}
	tasks, settled, lease, err := client.ClaimBatch(ctx, "w1", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 4 || settled || lease != 40*time.Millisecond {
		t.Fatalf("claim-batch: %d tasks settled=%v lease=%v", len(tasks), settled, lease)
	}
	for i, task := range tasks {
		if task.Payload.Index != i || task.Worker != "w1" {
			t.Fatalf("batch order: task %d is %+v", i, task)
		}
	}
	ids := []string{tasks[0].ID, tasks[1].ID, "t999999"}
	errs, err := client.HeartbeatBatch(ctx, "w1", ids)
	if err != nil {
		t.Fatal(err)
	}
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("heartbeat own claims: %v", errs)
	}
	var st *LeaseStatusError
	if !asLeaseStatus(errs[2], &st) || st.Status != http.StatusNotFound {
		t.Fatalf("heartbeat unknown id: %v", errs[2])
	}

	// Let every lease lapse; w2 steals the whole batch. w1's late batch
	// finish gets per-item 409s, w2's wins.
	deadline := time.Now().Add(5 * time.Second)
	var stolen []distwork.Task[leasePayload]
	for {
		store.ExpireLeases()
		stolen, _, _, err = client.ClaimBatch(ctx, "w2", 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(stolen) == n {
			break
		}
		// Partial steals go back so the next round claims all six at once.
		for _, task := range stolen {
			if err := client.Release(ctx, task.ID, "w2", "retry full batch"); err != nil {
				t.Fatal(err)
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("steal never happened (last saw %d tasks)", len(stolen))
		}
		time.Sleep(5 * time.Millisecond)
	}
	items := []distwork.FinishItem{
		{ID: tasks[0].ID, Result: "stale-0"},
		{ID: tasks[1].ID, Result: "stale-1"},
	}
	lateErrs, err := client.FinishBatch(ctx, "w1", items)
	if err != nil {
		t.Fatal(err)
	}
	for i, ierr := range lateErrs {
		if !asLeaseStatus(ierr, &st) || st.Status != http.StatusConflict {
			t.Fatalf("stale batch finish item %d: %v", i, ierr)
		}
	}
	var fresh []distwork.FinishItem
	for _, task := range stolen {
		fresh = append(fresh, distwork.FinishItem{ID: task.ID, Result: "fresh"})
	}
	fresh = append(fresh, distwork.FinishItem{ID: stolen[0].ID, Result: "dup"})
	freshErrs, err := client.FinishBatch(ctx, "w2", fresh)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if freshErrs[i] != nil {
			t.Fatalf("fresh batch finish item %d: %v", i, freshErrs[i])
		}
	}
	// The duplicate settle inside the same batch is rejected per item.
	if !asLeaseStatus(freshErrs[n], &st) || st.Status != http.StatusConflict {
		t.Fatalf("duplicate finish in batch: %v", freshErrs[n])
	}
	if !store.Settled() {
		t.Fatal("store should be settled")
	}
	got, _ := store.Get(tasks[0].ID)
	if got.Result != "fresh" {
		t.Fatalf("result: %q, want the stealing worker's", got.Result)
	}
	// Settled signal arrives on an empty batch claim.
	none, settled, _, err := client.ClaimBatch(ctx, "w3", 5)
	if err != nil || len(none) != 0 || !settled {
		t.Fatalf("settled claim-batch: %v %v %v", none, settled, err)
	}
}
