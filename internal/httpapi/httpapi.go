// Package httpapi exposes the simulator as a service: a REST API over a
// jobqueue.Queue where each submitted configuration becomes a journaled
// job executed by a worker pool, observable live through Peek snapshots
// and an SSE progress stream, and steerable through pause/resume/step/
// cancel endpoints.
//
//	POST /v1/sessions                submit a combined config → job id
//	GET  /v1/sessions                list jobs
//	GET  /v1/sessions/{id}           job state + live Peek while running
//	GET  /v1/sessions/{id}/events    SSE progress stream
//	POST /v1/sessions/{id}/pause     park the run between event slices
//	POST /v1/sessions/{id}/resume    continue a paused run
//	POST /v1/sessions/{id}/step?n=   execute n events while paused
//	POST /v1/sessions/{id}/cancel    stop the run, keeping partial artifacts
//	GET  /v1/sessions/{id}/result    canonical result JSON
//	GET  /v1/sessions/{id}/trace     event trace (when the config enabled it)
//	GET  /v1/sessions/{id}/gantt.svg allocation Gantt chart
package httpapi

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"repro/elastisim"
	"repro/internal/jobqueue"
)

// Server is the HTTP face of one job queue. Create it with New, register
// its RunJob method as the worker pool's Runner, and serve Handler().
type Server struct {
	queue   *jobqueue.Queue
	dataDir string

	mu        sync.Mutex
	live      map[string]*liveRun
	cancelled map[string]bool // cancel requested for an active job

	// pausePoll bounds how long a paused worker waits between heartbeat
	// and cancel checks; chunk is the Step slice size (the latency bound
	// on control requests). Tests shorten both. chunkDelay inserts a
	// test-only sleep between Step slices so control requests land
	// mid-run deterministically — execution slicing is invisible to the
	// simulation, so it cannot change results.
	pausePoll  time.Duration
	chunk      int
	chunkDelay time.Duration

	obsState
}

// New creates a Server over queue, writing job artifacts under dataDir.
func New(queue *jobqueue.Queue, dataDir string) *Server {
	s := &Server{
		queue:     queue,
		dataDir:   dataDir,
		live:      make(map[string]*liveRun),
		cancelled: make(map[string]bool),
		pausePoll: 250 * time.Millisecond,
		chunk:     stepChunk,
	}
	s.bootID = fmt.Sprintf("%x", time.Now().UnixNano())
	return s
}

func (s *Server) register(id string, lr *liveRun) {
	s.mu.Lock()
	s.live[id] = lr
	s.mu.Unlock()
}

func (s *Server) deregister(id string) {
	s.mu.Lock()
	delete(s.live, id)
	delete(s.cancelled, id)
	s.mu.Unlock()
}

func (s *Server) liveRun(id string) *liveRun {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.live[id]
}

func (s *Server) requestCancel(id string) {
	s.mu.Lock()
	s.cancelled[id] = true
	s.mu.Unlock()
}

func (s *Server) cancelRequested(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cancelled[id]
}

// Handler builds the route table. Every route — probes and metrics
// included — goes through the instrument middleware, so each gets a
// request counter, a latency histogram, an access-log line, and an
// X-Request-ID echo. Route labels are pinned here at registration, the
// only place Go's mux knows the pattern.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.instrument(pattern, h))
	}
	route("POST /v1/sessions", s.handleSubmit)
	route("GET /v1/sessions", s.handleList)
	route("GET /v1/sessions/{id}", s.handleGet)
	route("GET /v1/sessions/{id}/events", s.handleEvents)
	route("POST /v1/sessions/{id}/pause", s.handleCtrl(opPause))
	route("POST /v1/sessions/{id}/resume", s.handleCtrl(opResume))
	route("POST /v1/sessions/{id}/step", s.handleCtrl(opStep))
	route("POST /v1/sessions/{id}/cancel", s.handleCancel)
	route("GET /v1/sessions/{id}/result", s.handleArtifact("result.json", "application/json"))
	route("GET /v1/sessions/{id}/trace", s.handleArtifact("trace.json", "application/json"))
	route("GET /v1/sessions/{id}/gantt.svg", s.handleArtifact("gantt.svg", "image/svg+xml"))
	route("GET /metrics", s.handleMetrics)
	route("GET /healthz", s.handleHealthz)
	route("GET /readyz", s.handleReadyz)
	return mux
}

// jobView is the wire shape of a job: lifecycle fields plus, while the
// job runs, a live Peek snapshot.
type jobView struct {
	ID        string          `json:"id"`
	State     jobqueue.State  `json:"state"`
	Submitted time.Time       `json:"submitted"`
	Started   *time.Time      `json:"started,omitempty"`
	Finished  *time.Time      `json:"finished,omitempty"`
	Attempts  int             `json:"attempts,omitempty"`
	Error     string          `json:"error,omitempty"`
	Note      string          `json:"note,omitempty"`
	Peek      *elastisim.Peek `json:"peek,omitempty"`
}

func (s *Server) view(j jobqueue.Job, withPeek bool) jobView {
	v := jobView{
		ID:        j.ID,
		State:     j.State,
		Submitted: j.Submitted,
		Attempts:  j.Attempts,
		Error:     j.Error,
		Note:      j.Note,
	}
	if !j.Started.IsZero() {
		t := j.Started
		v.Started = &t
	}
	if !j.Finished.IsZero() {
		t := j.Finished
		v.Finished = &t
	}
	if withPeek && j.State.Active() {
		if lr := s.liveRun(j.ID); lr != nil {
			p := lr.session.Peek()
			v.Peek = &p
		}
	}
	return v
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSubmit validates the posted config document and enqueues it.
// Validation happens here — before the job exists — so a malformed config
// is a 400 at submit time, never a failed job.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if _, err := elastisim.ParseConfig(body); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	job, err := s.queue.Submit(body)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, s.view(job, false))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.queue.List()
	views := make([]jobView, len(jobs))
	for i, j := range jobs {
		views[i] = s.view(j, true)
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	job, ok := s.queue.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no session %s", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.view(job, true))
}

// handleCtrl builds the pause/resume/step handler: the request is relayed
// to the owning worker over the live run's control channel and the worker
// acknowledges after applying it between Step slices.
func (s *Server) handleCtrl(op ctrlOp) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		job, ok := s.queue.Get(id)
		if !ok {
			writeError(w, http.StatusNotFound, "no session %s", id)
			return
		}
		if job.State.Terminal() {
			writeError(w, http.StatusConflict, "session %s is %s", id, job.State)
			return
		}
		lr := s.liveRun(id)
		if lr == nil {
			writeError(w, http.StatusConflict, "session %s is %s, not executing yet", id, job.State)
			return
		}
		msg := ctrlMsg{op: op, reply: make(chan error, 1)}
		if op == opStep {
			if nStr := r.URL.Query().Get("n"); nStr != "" {
				n, err := strconv.Atoi(nStr)
				if err != nil || n <= 0 {
					writeError(w, http.StatusBadRequest, "invalid step count %q", nStr)
					return
				}
				msg.n = n
			}
		}
		select {
		case lr.ctrl <- msg:
		case <-time.After(5 * time.Second):
			writeError(w, http.StatusServiceUnavailable, "worker for %s is not responding", id)
			return
		case <-r.Context().Done():
			return
		}
		select {
		case err := <-msg.reply:
			if err != nil {
				writeError(w, http.StatusConflict, "%v", err)
				return
			}
		case <-time.After(5 * time.Second):
			writeError(w, http.StatusServiceUnavailable, "worker for %s did not acknowledge", id)
			return
		case <-r.Context().Done():
			return
		}
		job, _ = s.queue.Get(id)
		writeJSON(w, http.StatusOK, s.view(job, true))
	}
}

// handleCancel stops a session. Pending jobs cancel immediately; for an
// executing job the owning worker honors the request between Step slices,
// flushing partial artifacts before settling the job as cancelled.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.queue.Get(id); !ok {
		writeError(w, http.StatusNotFound, "no session %s", id)
		return
	}
	s.requestCancel(id)
	state, err := s.queue.Cancel(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	job, _ := s.queue.Get(id)
	status := http.StatusOK
	if state.Active() {
		status = http.StatusAccepted // the worker will settle it shortly
	}
	writeJSON(w, status, s.view(job, true))
}

// handleEvents streams SSE: "progress" events while the simulation runs
// (one per fan-out update), then a single "done" event carrying the final
// job view once the job reaches a terminal state.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.queue.Get(id); !ok {
		writeError(w, http.StatusNotFound, "no session %s", id)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	s.sse.Add(1)
	defer s.sse.Add(-1)

	emit := func(event string, v any) {
		data, _ := json.Marshal(v)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		flusher.Flush()
	}

	for {
		if lr := s.liveRun(id); lr != nil {
			ch, cancel := lr.fan.Subscribe(16)
			s.streamProgress(r, ch, emit)
			cancel()
		}
		job, ok := s.queue.Get(id)
		if !ok || job.State.Terminal() {
			emit("done", s.view(job, false))
			return
		}
		// Not executing (yet, or anymore after an interruption): poll
		// until a live run appears or the job settles.
		select {
		case <-r.Context().Done():
			return
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// streamProgress relays fan-out updates to the SSE connection until the
// run's stream closes or the client disconnects.
func (s *Server) streamProgress(r *http.Request, ch <-chan elastisim.ProgressUpdate, emit func(string, any)) {
	for {
		select {
		case u, ok := <-ch:
			if !ok {
				return
			}
			emit("progress", u)
		case <-r.Context().Done():
			return
		}
	}
}

// handleArtifact serves one file from the job's artifact directory. The
// canonical result JSON is served byte-for-byte as the runner wrote it,
// which is what makes the HTTP result comparable to a direct CLI run.
func (s *Server) handleArtifact(name, contentType string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		job, ok := s.queue.Get(id)
		if !ok {
			writeError(w, http.StatusNotFound, "no session %s", id)
			return
		}
		if job.Result == "" {
			writeError(w, http.StatusConflict, "session %s is %s: no artifacts yet", id, job.State)
			return
		}
		f, err := os.Open(filepath.Join(job.Result, name))
		if err != nil {
			if os.IsNotExist(err) {
				writeError(w, http.StatusNotFound, "session %s has no %s artifact", id, name)
				return
			}
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		defer f.Close()
		w.Header().Set("Content-Type", contentType)
		_, _ = io.Copy(w, f)
	}
}
