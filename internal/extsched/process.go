package extsched

import (
	"fmt"
	"os"
	"os/exec"
)

// Process is a Bridge backed by a child process speaking the protocol on
// its stdin/stdout.
type Process struct {
	*Bridge
	cmd *exec.Cmd
}

// StartProcess launches argv[0] with the given arguments and connects the
// bridge to its stdio. The child's stderr is passed through for
// diagnostics. extraEnv entries ("KEY=value") are appended to the current
// environment.
func StartProcess(argv []string, extraEnv ...string) (*Process, error) {
	if len(argv) == 0 {
		return nil, fmt.Errorf("extsched: empty command")
	}
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Stderr = os.Stderr
	if len(extraEnv) > 0 {
		cmd.Env = append(os.Environ(), extraEnv...)
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("extsched: starting %q: %w", argv[0], err)
	}
	return &Process{
		Bridge: NewBridge("external:"+argv[0], stdout, stdin),
		cmd:    cmd,
	}, nil
}

// Close ends the protocol session and waits for the child to exit.
func (p *Process) Close() error {
	endErr := p.Bridge.Close()
	waitErr := p.cmd.Wait()
	if endErr != nil {
		return endErr
	}
	return waitErr
}
