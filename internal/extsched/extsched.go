// Package extsched bridges the simulator to out-of-process scheduling
// algorithms, mirroring the decoupled algorithm interface of the original
// system (which speaks ZeroMQ to a Python process). Here the protocol is
// line-delimited JSON over the child's stdin/stdout, so algorithms can be
// written in any language without linking against the simulator:
//
//	simulator -> algorithm   {"type":"invoke", "now":..., "pending":[...],
//	                          "running":[...], "free_nodes":n, "total_nodes":n,
//	                          "reasons":"submit+completion"}
//	algorithm -> simulator   {"type":"decisions", "decisions":[
//	                          {"kind":"start","job":3,"num_nodes":8}, ...]}
//	simulator -> algorithm   {"type":"end"}        (once, at shutdown)
//
// Decision kinds: "start", "resize", "grant", "deny", "kill". Job views
// carry everything an algorithm needs: flexibility class, node bounds,
// current allocation, scheduling-point and evolving-request state, and the
// walltime-derived expected end (absent when unknown).
package extsched

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/job"
	"repro/internal/sched"
)

// jobViewMsg is the wire form of sched.JobView.
type jobViewMsg struct {
	ID                int      `json:"id"`
	Name              string   `json:"name"`
	Type              job.Type `json:"type"`
	State             string   `json:"state"`
	Nodes             int      `json:"nodes,omitempty"`
	MinNodes          int      `json:"min_nodes"`
	MaxNodes          int      `json:"max_nodes"`
	WallTime          float64  `json:"walltime,omitempty"`
	SubmitTime        float64  `json:"submit_time"`
	StartTime         float64  `json:"start_time,omitempty"`
	ExpectedEnd       *float64 `json:"expected_end,omitempty"`
	AtSchedulingPoint bool     `json:"at_scheduling_point,omitempty"`
	EvolvingRequest   int      `json:"evolving_request,omitempty"`
}

func viewMsg(v *sched.JobView) jobViewMsg {
	m := jobViewMsg{
		ID:         int(v.ID),
		Name:       v.Job.Label(),
		Type:       v.Job.Type,
		MinNodes:   v.Job.MinNodes(),
		MaxNodes:   v.Job.MaxNodes(),
		WallTime:   v.Job.WallTimeLimit,
		SubmitTime: v.SubmitTime,
	}
	switch v.State {
	case sched.StatePending:
		m.State = "pending"
	default:
		m.State = "running"
		m.Nodes = v.Nodes
		m.StartTime = v.StartTime
		m.AtSchedulingPoint = v.AtSchedulingPoint
		m.EvolvingRequest = v.EvolvingRequest
		if !math.IsInf(v.ExpectedEnd, 1) {
			end := v.ExpectedEnd
			m.ExpectedEnd = &end
		}
	}
	return m
}

// invokeMsg is one scheduler invocation on the wire.
type invokeMsg struct {
	Type       string       `json:"type"` // "invoke"
	Now        float64      `json:"now"`
	Reasons    string       `json:"reasons"`
	Pending    []jobViewMsg `json:"pending"`
	Running    []jobViewMsg `json:"running"`
	FreeNodes  int          `json:"free_nodes"`
	TotalNodes int          `json:"total_nodes"`
}

// decisionMsg is one decision on the wire.
type decisionMsg struct {
	Kind     string `json:"kind"`
	Job      int    `json:"job"`
	NumNodes int    `json:"num_nodes,omitempty"`
}

// responseMsg is the algorithm's answer.
type responseMsg struct {
	Type      string        `json:"type"` // "decisions"
	Decisions []decisionMsg `json:"decisions"`
	// Error lets the algorithm report a failure explicitly.
	Error string `json:"error,omitempty"`
}

// endMsg terminates the session.
type endMsg struct {
	Type string `json:"type"` // "end"
}

// ParseDecisionKind maps a wire kind to the sched constant.
func ParseDecisionKind(kind string) (sched.DecisionKind, error) {
	switch kind {
	case "start":
		return sched.DecisionStart, nil
	case "resize":
		return sched.DecisionResize, nil
	case "grant":
		return sched.DecisionGrant, nil
	case "deny":
		return sched.DecisionDeny, nil
	case "kill":
		return sched.DecisionKill, nil
	default:
		return 0, fmt.Errorf("extsched: unknown decision kind %q", kind)
	}
}

// KindName maps a sched decision kind to its wire name.
func KindName(k sched.DecisionKind) string {
	switch k {
	case sched.DecisionStart:
		return "start"
	case sched.DecisionResize:
		return "resize"
	case sched.DecisionGrant:
		return "grant"
	case sched.DecisionDeny:
		return "deny"
	case sched.DecisionKill:
		return "kill"
	default:
		return fmt.Sprintf("kind%d", int(k))
	}
}

// Bridge adapts a JSON-over-stream peer to the sched.Algorithm interface.
// It is synchronous: every Schedule call sends one invoke message and
// blocks for one response. Protocol failures poison the bridge: further
// invocations return no decisions and Err reports the cause (the engine
// then surfaces a deadlock error instead of hanging forever).
type Bridge struct {
	name string
	enc  *json.Encoder
	dec  *json.Decoder
	err  error
}

// NewBridge wraps a connected peer (its output, our input).
func NewBridge(name string, from io.Reader, to io.Writer) *Bridge {
	return &Bridge{
		name: name,
		enc:  json.NewEncoder(to),
		dec:  json.NewDecoder(from),
	}
}

// Name implements sched.Algorithm.
func (b *Bridge) Name() string { return b.name }

// Err returns the first protocol error, if any.
func (b *Bridge) Err() error { return b.err }

// Schedule implements sched.Algorithm.
func (b *Bridge) Schedule(inv *sched.Invocation) []sched.Decision {
	if b.err != nil {
		return nil
	}
	msg := invokeMsg{
		Type:       "invoke",
		Now:        inv.Now,
		Reasons:    inv.Reasons.String(),
		Pending:    make([]jobViewMsg, 0, len(inv.Pending)),
		Running:    make([]jobViewMsg, 0, len(inv.Running)),
		FreeNodes:  inv.FreeNodes,
		TotalNodes: inv.TotalNodes,
	}
	for _, v := range inv.Pending {
		msg.Pending = append(msg.Pending, viewMsg(v))
	}
	for _, v := range inv.Running {
		msg.Running = append(msg.Running, viewMsg(v))
	}
	if err := b.enc.Encode(&msg); err != nil {
		b.err = fmt.Errorf("extsched: sending invocation: %w", err)
		return nil
	}
	var resp responseMsg
	if err := b.dec.Decode(&resp); err != nil {
		b.err = fmt.Errorf("extsched: reading response: %w", err)
		return nil
	}
	if resp.Error != "" {
		b.err = fmt.Errorf("extsched: algorithm error: %s", resp.Error)
		return nil
	}
	if resp.Type != "decisions" {
		b.err = fmt.Errorf("extsched: unexpected response type %q", resp.Type)
		return nil
	}
	out := make([]sched.Decision, 0, len(resp.Decisions))
	for _, d := range resp.Decisions {
		kind, err := ParseDecisionKind(d.Kind)
		if err != nil {
			b.err = err
			return nil
		}
		out = append(out, sched.Decision{Kind: kind, Job: job.ID(d.Job), NumNodes: d.NumNodes})
	}
	return out
}

// Close tells the peer the session is over. Safe after errors.
func (b *Bridge) Close() error {
	if b.err != nil {
		return b.err
	}
	return b.enc.Encode(&endMsg{Type: "end"})
}

// Serve runs the peer side of the protocol: it reads invocations from
// `from`, asks algo for decisions, and writes them to `to`, until an "end"
// message or EOF. It is the building block for writing external
// schedulers in Go (and doubles as the reference implementation of the
// peer protocol).
func Serve(algo sched.Algorithm, from io.Reader, to io.Writer) error {
	dec := json.NewDecoder(from)
	enc := json.NewEncoder(to)
	for {
		var raw struct {
			Type string `json:"type"`
			invokeMsg
		}
		if err := dec.Decode(&raw); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("extsched: serve decode: %w", err)
		}
		switch raw.Type {
		case "end":
			return nil
		case "invoke":
			inv := invocationFromMsg(&raw.invokeMsg)
			decisions := algo.Schedule(inv)
			resp := responseMsg{Type: "decisions", Decisions: make([]decisionMsg, 0, len(decisions))}
			for _, d := range decisions {
				resp.Decisions = append(resp.Decisions, decisionMsg{
					Kind: KindName(d.Kind), Job: int(d.Job), NumNodes: d.NumNodes,
				})
			}
			if err := enc.Encode(&resp); err != nil {
				return fmt.Errorf("extsched: serve encode: %w", err)
			}
		default:
			return fmt.Errorf("extsched: serve: unexpected message type %q", raw.Type)
		}
	}
}

// invocationFromMsg reconstructs an Invocation on the peer side. The Job
// descriptions are skeletons carrying only scheduling-relevant fields
// (type, node bounds, walltime); application models do not cross the wire.
func invocationFromMsg(m *invokeMsg) *sched.Invocation {
	inv := &sched.Invocation{
		Now:        m.Now,
		FreeNodes:  m.FreeNodes,
		TotalNodes: m.TotalNodes,
	}
	for i := range m.Pending {
		inv.Pending = append(inv.Pending, viewFromMsg(&m.Pending[i]))
	}
	for i := range m.Running {
		inv.Running = append(inv.Running, viewFromMsg(&m.Running[i]))
	}
	return inv
}

func viewFromMsg(m *jobViewMsg) *sched.JobView {
	j := &job.Job{
		ID:            job.ID(m.ID),
		Name:          m.Name,
		Type:          m.Type,
		WallTimeLimit: m.WallTime,
	}
	if m.Type == job.Rigid {
		j.NumNodes = m.MinNodes
	} else {
		j.NumNodesMin = m.MinNodes
		j.NumNodesMax = m.MaxNodes
		j.NumNodes = m.MinNodes
	}
	v := &sched.JobView{
		ID:                j.ID,
		Job:               j,
		Nodes:             m.Nodes,
		SubmitTime:        m.SubmitTime,
		StartTime:         m.StartTime,
		AtSchedulingPoint: m.AtSchedulingPoint,
		EvolvingRequest:   m.EvolvingRequest,
		ExpectedEnd:       math.Inf(1),
	}
	if m.State == "pending" {
		v.State = sched.StatePending
	} else {
		v.State = sched.StateRunning
	}
	if m.ExpectedEnd != nil {
		v.ExpectedEnd = *m.ExpectedEnd
	}
	return v
}
