package extsched

import (
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"

	"repro/elastisim"
	"repro/internal/job"
	"repro/internal/sched"
)

// pipePeer runs Serve(algo) connected to a Bridge entirely in-process.
func pipePeer(t *testing.T, algo sched.Algorithm) (*Bridge, chan error) {
	t.Helper()
	toPeerR, toPeerW := io.Pipe()
	fromPeerR, fromPeerW := io.Pipe()
	done := make(chan error, 1)
	go func() {
		done <- Serve(algo, toPeerR, fromPeerW)
		fromPeerW.Close()
	}()
	return NewBridge("pipe", fromPeerR, toPeerW), done
}

func TestBridgeEndToEndSimulation(t *testing.T) {
	// A full simulation scheduled by an out-of-process-style FCFS running
	// behind the JSON protocol must produce exactly the same results as
	// the in-process FCFS.
	gen := func() *elastisim.Workload {
		wl, err := elastisim.GenerateWorkload(elastisim.WorkloadConfig{
			Seed: 5, Count: 25,
			Arrival:      job.Arrival{Kind: job.ArrivalPoisson, Rate: 0.05},
			Nodes:        [2]int{1, 8},
			MachineNodes: 16,
			NodeSpeed:    100e9,
			TypeShares:   map[job.Type]float64{job.Rigid: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		return wl
	}
	spec := elastisim.HomogeneousPlatform("x", 16, 100e9, 10e9, 40e9, 40e9)

	direct, err := elastisim.Run(elastisim.Config{
		Platform: spec, Workload: gen(), Algorithm: elastisim.NewFCFS(),
	})
	if err != nil {
		t.Fatal(err)
	}

	bridge, done := pipePeer(t, &sched.FCFS{})
	bridged, err := elastisim.Run(elastisim.Config{
		Platform: spec, Workload: gen(), Algorithm: bridge,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := bridge.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("peer: %v", err)
	}
	if bridge.Err() != nil {
		t.Fatalf("bridge: %v", bridge.Err())
	}
	if direct.Summary != bridged.Summary {
		t.Errorf("bridged run diverged:\ndirect  %+v\nbridged %+v", direct.Summary, bridged.Summary)
	}
}

func TestBridgeMalleableDecisionsCrossTheWire(t *testing.T) {
	// The adaptive policy behind the bridge must still resize jobs.
	wl, err := elastisim.GenerateWorkload(elastisim.WorkloadConfig{
		Seed: 6, Count: 20,
		Arrival:      job.Arrival{Kind: job.ArrivalPoisson, Rate: 0.05},
		Nodes:        [2]int{2, 8},
		MachineNodes: 16,
		NodeSpeed:    100e9,
		TypeShares:   map[job.Type]float64{job.Malleable: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	bridge, done := pipePeer(t, &sched.Adaptive{})
	res, err := elastisim.Run(elastisim.Config{
		Platform:  elastisim.HomogeneousPlatform("x", 16, 100e9, 10e9, 40e9, 40e9),
		Workload:  wl,
		Algorithm: bridge,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := bridge.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
	if res.Summary.Reconfigs == 0 {
		t.Error("no reconfigurations crossed the bridge")
	}
}

func TestBridgeProtocolError(t *testing.T) {
	// A peer that answers garbage poisons the bridge instead of panicking.
	in := strings.NewReader(`{"type":"nonsense"}` + "\n")
	var out strings.Builder
	b := NewBridge("bad", in, &out)
	ds := b.Schedule(&sched.Invocation{})
	if ds != nil {
		t.Errorf("decisions from bad peer: %v", ds)
	}
	if b.Err() == nil {
		t.Error("protocol error not recorded")
	}
	// Subsequent calls stay inert.
	if ds := b.Schedule(&sched.Invocation{}); ds != nil {
		t.Error("poisoned bridge still returning decisions")
	}
}

func TestBridgePeerReportsError(t *testing.T) {
	in := strings.NewReader(`{"type":"decisions","error":"boom"}` + "\n")
	var out strings.Builder
	b := NewBridge("err", in, &out)
	b.Schedule(&sched.Invocation{})
	if b.Err() == nil || !strings.Contains(b.Err().Error(), "boom") {
		t.Errorf("peer error not surfaced: %v", b.Err())
	}
}

func TestBridgeUnknownDecisionKind(t *testing.T) {
	in := strings.NewReader(`{"type":"decisions","decisions":[{"kind":"launch","job":0}]}` + "\n")
	var out strings.Builder
	b := NewBridge("k", in, &out)
	b.Schedule(&sched.Invocation{})
	if b.Err() == nil || !strings.Contains(b.Err().Error(), "launch") {
		t.Errorf("unknown kind not rejected: %v", b.Err())
	}
}

func TestDecisionKindRoundTrip(t *testing.T) {
	kinds := []sched.DecisionKind{
		sched.DecisionStart, sched.DecisionResize, sched.DecisionGrant,
		sched.DecisionDeny, sched.DecisionKill,
	}
	for _, k := range kinds {
		name := KindName(k)
		back, err := ParseDecisionKind(name)
		if err != nil || back != k {
			t.Errorf("%v -> %q -> %v (%v)", k, name, back, err)
		}
	}
	if _, err := ParseDecisionKind("fork"); err == nil {
		t.Error("unknown kind parsed")
	}
}

func TestViewMsgCarriesEverything(t *testing.T) {
	v := &sched.JobView{
		ID: 3,
		Job: &job.Job{
			ID: 3, Name: "m", Type: job.Malleable,
			NumNodesMin: 2, NumNodesMax: 16, WallTimeLimit: 100,
		},
		State:             sched.StateRunning,
		Nodes:             8,
		AtSchedulingPoint: true,
		EvolvingRequest:   12,
		SubmitTime:        5,
		StartTime:         10,
		ExpectedEnd:       110,
	}
	m := viewMsg(v)
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back jobViewMsg
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	v2 := viewFromMsg(&back)
	if v2.ID != 3 || v2.Job.Type != job.Malleable || v2.Nodes != 8 ||
		!v2.AtSchedulingPoint || v2.EvolvingRequest != 12 ||
		v2.Job.MinNodes() != 2 || v2.Job.MaxNodes() != 16 ||
		v2.ExpectedEnd != 110 || v2.StartTime != 10 {
		t.Errorf("round trip lost data: %+v", v2)
	}
}

// TestHelperProcessScheduler is not a real test: when re-executed with the
// marker environment variable it acts as an external FCFS scheduler
// speaking the protocol on stdio.
func TestHelperProcessScheduler(t *testing.T) {
	if os.Getenv("EXTSCHED_HELPER") != "1" {
		return
	}
	if err := Serve(&sched.FCFS{}, os.Stdin, os.Stdout); err != nil {
		os.Exit(1)
	}
	os.Exit(0)
}

func TestProcessBridge(t *testing.T) {
	// Launch ourselves as the external scheduler and run a simulation
	// through a real process boundary.
	exe, err := os.Executable()
	if err != nil {
		t.Skipf("no test executable: %v", err)
	}
	proc, err := StartProcess(
		[]string{exe, "-test.run=TestHelperProcessScheduler"},
		"EXTSCHED_HELPER=1",
	)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := elastisim.GenerateWorkload(elastisim.WorkloadConfig{
		Seed: 5, Count: 15,
		Arrival:      job.Arrival{Kind: job.ArrivalPoisson, Rate: 0.05},
		Nodes:        [2]int{1, 8},
		MachineNodes: 16,
		NodeSpeed:    100e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := elastisim.Run(elastisim.Config{
		Platform:  elastisim.HomogeneousPlatform("x", 16, 100e9, 10e9, 40e9, 40e9),
		Workload:  wl,
		Algorithm: proc,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := proc.Close(); err != nil {
		t.Fatalf("closing external scheduler: %v", err)
	}
	if res.Summary.Completed != 15 {
		t.Errorf("completed %d/15 via external scheduler", res.Summary.Completed)
	}
}
