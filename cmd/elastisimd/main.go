// Command elastisimd runs the simulator as a service: a REST API where
// each submitted configuration becomes a journaled job executed by a
// worker pool, observable live over SSE and steerable with
// pause/resume/step/cancel.
//
// Usage:
//
//	elastisimd [-addr 127.0.0.1:9178] [-data elastisim-data]
//	           [-workers 0] [-lease 30s]
//
// State lives under -data: jobs/journal.jsonl records every job
// transition (a restarted daemon recovers queued and completed jobs from
// it, re-running only work that was interrupted), and jobs/<id>/ holds
// each job's artifacts (result.json, gantt.svg, trace.json).
//
// On SIGINT/SIGTERM the daemon stops accepting requests, interrupts
// running simulations between event slices, journals their partial
// progress so the next start re-runs them, and flushes the journal.
//
// The API is documented in the README ("Running as a service"):
//
//	POST /v1/sessions              GET /v1/sessions
//	GET  /v1/sessions/{id}         GET /v1/sessions/{id}/events   (SSE)
//	POST /v1/sessions/{id}/pause   POST /v1/sessions/{id}/resume
//	POST /v1/sessions/{id}/step    POST /v1/sessions/{id}/cancel
//	GET  /v1/sessions/{id}/result  GET /v1/sessions/{id}/gantt.svg
//	GET  /v1/sessions/{id}/trace
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cli"
	"repro/internal/httpapi"
	"repro/internal/jobqueue"
)

func main() { cli.Main("elastisimd", run) }

func run(ctx context.Context) error {
	var (
		addr    = flag.String("addr", "127.0.0.1:9178", "listen address")
		dataDir = flag.String("data", "elastisim-data", "state directory (journal + job artifacts)")
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		lease   = flag.Duration("lease", 30*time.Second, "job lease duration (claims lapse without heartbeats)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		flag.Usage()
		return cli.ErrUsage
	}

	if err := os.MkdirAll(filepath.Join(*dataDir, "jobs"), 0o755); err != nil {
		return err
	}
	queue, err := jobqueue.Open(filepath.Join(*dataDir, "jobs", "journal.jsonl"), jobqueue.Options{Lease: *lease})
	if err != nil {
		return err
	}
	server := httpapi.New(queue, *dataDir)
	pool := jobqueue.NewPool(queue, *workers, server.RunJob)

	poolCtx, stopPool := context.WithCancel(context.Background())
	defer stopPool()
	pool.Start(poolCtx)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		queue.Close()
		return err
	}
	httpSrv := &http.Server{Handler: server.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	counts := queue.Counts()
	recovered := counts[jobqueue.StatePending]
	kept := counts[jobqueue.StateDone] + counts[jobqueue.StateFailed] + counts[jobqueue.StateCancelled]
	fmt.Fprintf(os.Stderr, "elastisimd: listening on http://%s (%d workers, %d queued, %d finished jobs recovered)\n",
		ln.Addr(), pool.Workers(), recovered, kept)

	select {
	case err := <-serveErr:
		stopPool()
		pool.Wait()
		queue.Close()
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting requests, then interrupt running
	// simulations — each worker journals its job's partial progress and
	// requeues it — and flush the journal last.
	fmt.Fprintln(os.Stderr, "elastisimd: shutting down, draining running sessions")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	serr := httpSrv.Shutdown(shutCtx)
	if errors.Is(serr, context.DeadlineExceeded) {
		serr = httpSrv.Close()
	}
	stopPool()
	pool.Wait()
	if cerr := queue.Close(); serr == nil {
		serr = cerr
	}
	if serr != nil {
		return serr
	}
	return ctx.Err()
}
