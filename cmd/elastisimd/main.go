// Command elastisimd runs the simulator as a service: a REST API where
// each submitted configuration becomes a journaled job executed by a
// worker pool, observable live over SSE and steerable with
// pause/resume/step/cancel.
//
// Usage:
//
//	elastisimd [-addr 127.0.0.1:9178] [-data elastisim-data]
//	           [-workers 0] [-lease 30s]
//	           [-access-log path] [-flight 512]
//
// State lives under -data: jobs/journal.jsonl records every job
// transition (a restarted daemon recovers queued and completed jobs from
// it, re-running only work that was interrupted), and jobs/<id>/ holds
// each job's artifacts (result.json, gantt.svg, trace.json).
//
// Observability (see README "Monitoring elastisimd"):
//
//	GET /metrics   Prometheus text exposition: job queue (states, claims,
//	               steals, lease expirations, journal fsync/compaction/
//	               error counters), worker pool, HTTP, and
//	               simulation-kernel series
//	GET /healthz   liveness (200 while the process serves)
//	GET /readyz    readiness (503 once the graceful drain begins)
//
// A flight recorder keeps the last -flight system events (job
// transitions, session lifecycle, 5xx responses) in memory; SIGQUIT dumps
// it with a metrics snapshot to -data/postmortem/ without stopping the
// daemon, and a simulation that dies of an internal engine panic leaves
// jobs/<id>/postmortem.json automatically.
//
// On SIGINT/SIGTERM the daemon flips /readyz to 503, interrupts running
// simulations between event slices, journals their partial progress so
// the next start re-runs them, and flushes the journal.
//
// The API is documented in the README ("Running as a service"):
//
//	POST /v1/sessions              GET /v1/sessions
//	GET  /v1/sessions/{id}         GET /v1/sessions/{id}/events   (SSE)
//	POST /v1/sessions/{id}/pause   POST /v1/sessions/{id}/resume
//	POST /v1/sessions/{id}/step    POST /v1/sessions/{id}/cancel
//	GET  /v1/sessions/{id}/result  GET /v1/sessions/{id}/gantt.svg
//	GET  /v1/sessions/{id}/trace
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/httpapi"
	"repro/internal/jobqueue"
	"repro/internal/obs"
)

func main() { cli.Main("elastisimd", run) }

func run(ctx context.Context) error {
	var (
		addr      = flag.String("addr", "127.0.0.1:9178", "listen address")
		dataDir   = flag.String("data", "elastisim-data", "state directory (journal + job artifacts)")
		workers   = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		lease     = flag.Duration("lease", 30*time.Second, "job lease duration (claims lapse without heartbeats)")
		accessLog = flag.String("access-log", "", "append one JSON line per request to this file (empty = off)")
		flightN   = flag.Int("flight", 512, "flight recorder ring size (0 = disabled)")
		shards    = flag.Int("journal-shards", 0, "hash-shard the job journal across this many files (0 = one file)")
		groupCmt  = flag.Duration("group-commit", 0, "batch journal fsyncs into one flush per window (0 = fsync every transition)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		flag.Usage()
		return cli.ErrUsage
	}

	reg := obs.NewRegistry()
	var flight *obs.FlightRecorder
	if *flightN > 0 {
		flight = obs.NewFlightRecorder(*flightN)
	}
	registerProcessGauges(reg)

	if err := os.MkdirAll(filepath.Join(*dataDir, "jobs"), 0o755); err != nil {
		return err
	}
	queue, err := jobqueue.Open(filepath.Join(*dataDir, "jobs", "journal.jsonl"), jobqueue.Options{
		Lease:         *lease,
		Metrics:       reg,
		Flight:        flight,
		JournalShards: *shards,
		GroupCommit:   *groupCmt,
	})
	if err != nil {
		return err
	}
	server := httpapi.New(queue, *dataDir)
	server.Observe(reg, flight)
	if *accessLog != "" {
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			queue.Close()
			return err
		}
		defer f.Close()
		server.SetAccessLog(f)
	}
	pool := jobqueue.NewPool(queue, *workers, server.RunJob)

	poolCtx, stopPool := context.WithCancel(context.Background())
	defer stopPool()
	pool.Start(poolCtx)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		queue.Close()
		return err
	}
	httpSrv := &http.Server{Handler: server.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	// SIGQUIT dumps the flight recorder and a metrics snapshot to
	// -data/postmortem/ and keeps serving — a non-destructive "what is the
	// daemon doing" probe for a live process.
	quitCh := make(chan os.Signal, 1)
	signal.Notify(quitCh, syscall.SIGQUIT)
	defer signal.Stop(quitCh)
	go func() {
		for range quitCh {
			path, derr := flight.DumpFile(filepath.Join(*dataDir, "postmortem"), "sigquit", "operator-requested dump (SIGQUIT)", reg)
			if derr != nil {
				fmt.Fprintf(os.Stderr, "elastisimd: postmortem dump failed: %v\n", derr)
				continue
			}
			fmt.Fprintf(os.Stderr, "elastisimd: postmortem written to %s\n", path)
		}
	}()

	counts := queue.Counts()
	recovered := counts[jobqueue.StatePending]
	kept := counts[jobqueue.StateDone] + counts[jobqueue.StateFailed] + counts[jobqueue.StateCancelled]
	fmt.Fprintf(os.Stderr, "elastisimd: listening on http://%s (%d workers, %d queued, %d finished jobs recovered; /metrics /healthz /readyz)\n",
		ln.Addr(), pool.Workers(), recovered, kept)
	flight.Recordf("daemon", "listening on %s (%d workers, %d queued recovered)", ln.Addr(), pool.Workers(), recovered)

	select {
	case err := <-serveErr:
		stopPool()
		pool.Wait()
		queue.Close()
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown. Flip readiness first and drain the worker pool
	// while HTTP is still serving, so load balancers see /readyz go 503
	// (and SSE subscribers see their streams settle) during the drain;
	// each worker journals its job's partial progress and requeues it.
	// Only then stop the listener and flush the journal.
	fmt.Fprintln(os.Stderr, "elastisimd: shutting down, draining running sessions")
	server.SetDraining()
	flight.Record("daemon", "shutdown signal received, draining")
	stopPool()
	pool.Wait()
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	serr := httpSrv.Shutdown(shutCtx)
	if errors.Is(serr, context.DeadlineExceeded) {
		serr = httpSrv.Close()
	}
	if cerr := queue.Close(); serr == nil {
		serr = cerr
	}
	if serr != nil {
		return serr
	}
	return ctx.Err()
}

// registerProcessGauges exports process vitals sampled at scrape time.
func registerProcessGauges(reg *obs.Registry) {
	start := time.Now()
	reg.Help("elastisimd_uptime_seconds", "Seconds since the daemon started.")
	reg.Gauge("elastisimd_uptime_seconds", func() float64 { return time.Since(start).Seconds() })
	reg.Help("elastisimd_goroutines", "Live goroutines in the daemon process.")
	reg.Gauge("elastisimd_goroutines", func() float64 { return float64(runtime.NumGoroutine()) })
	reg.Help("elastisimd_heap_bytes", "Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).")
	reg.Gauge("elastisimd_heap_bytes", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc)
	})
}
