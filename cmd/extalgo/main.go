// Command extalgo is a reference external scheduling algorithm: it speaks
// the simulator's JSON-over-stdio protocol (see internal/extsched) and
// answers with one of the built-in policies. It exists to demonstrate and
// test out-of-process scheduling:
//
//	elastisim -platform p.json -workload w.json \
//	          -external "./extalgo -algorithm easy"
//
// Writing the same loop in Python or any other language only requires
// reading one JSON object per line from stdin and writing one back.
package main

import (
	"context"
	"flag"
	"os"
	"strings"

	"repro/elastisim"
	"repro/internal/cli"
	"repro/internal/extsched"
)

func main() { cli.Main("extalgo", run) }

func run(ctx context.Context) error {
	algoName := flag.String("algorithm", "fcfs",
		"policy to serve: "+strings.Join(elastisim.AlgorithmNames(), ", "))
	flag.Parse()
	algo, err := elastisim.NewAlgorithm(*algoName)
	if err != nil {
		return cli.Usagef("%v", err)
	}
	return extsched.Serve(algo, os.Stdin, os.Stdout)
}
