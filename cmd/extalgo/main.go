// Command extalgo is a reference external scheduling algorithm: it speaks
// the simulator's JSON-over-stdio protocol (see internal/extsched) and
// answers with one of the built-in policies. It exists to demonstrate and
// test out-of-process scheduling:
//
//	elastisim -platform p.json -workload w.json \
//	          -external "./extalgo -algorithm easy"
//
// Writing the same loop in Python or any other language only requires
// reading one JSON object per line from stdin and writing one back.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/elastisim"
	"repro/internal/extsched"
)

func main() {
	algoName := flag.String("algorithm", "fcfs",
		"policy to serve: "+strings.Join(elastisim.AlgorithmNames(), ", "))
	flag.Parse()
	algo, err := elastisim.NewAlgorithm(*algoName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "extalgo:", err)
		os.Exit(2)
	}
	if err := extsched.Serve(algo, os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "extalgo:", err)
		os.Exit(1)
	}
}
