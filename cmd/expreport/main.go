// Command expreport regenerates every experiment of the reconstructed
// evaluation (E1–E10 plus the ablations) and prints the tables, optionally
// as markdown for EXPERIMENTS.md.
//
// Usage:
//
//	expreport                # all experiments, plain tables
//	expreport -only E2,E3    # a subset
//	expreport -markdown      # markdown output
//	expreport -jobs 150      # workload size for the batch experiments
//
// It also diffs self-profiling snapshots written by `elastisim
// -telemetry-out` or `sweep -telemetry-out`, for before/after comparisons
// of simulator-performance work:
//
//	expreport -snapshot-diff before.json,after.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/experiments"
	"repro/internal/telemetry"
)

func main() { cli.Main("expreport", run) }

func run(ctx context.Context) error {
	var (
		seed     = flag.Uint64("seed", 7, "workload seed")
		jobs     = flag.Int("jobs", 150, "job count for the batch experiments")
		only     = flag.String("only", "", "comma-separated experiment IDs (default: all)")
		markdown = flag.Bool("markdown", false, "emit markdown instead of plain tables")
		snapDiff = flag.String("snapshot-diff", "", "diff two telemetry snapshot JSON files: before.json,after.json")
	)
	flag.Parse()

	if *snapDiff != "" {
		return diffSnapshots(*snapDiff, *markdown)
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	want := func(id string) bool { return len(selected) == 0 || selected[id] }

	// Each experiment is a closure so an interrupt can stop between them:
	// tables printed so far stay on stdout, the rest never start.
	reports := []struct {
		id  string
		gen func() (*experiments.Table, error)
	}{
		{"E1", func() (*experiments.Table, error) {
			t, _, _, err := experiments.E1Utilization(*seed, *jobs)
			return t, err
		}},
		{"E2", func() (*experiments.Table, error) {
			t, _, err := experiments.E2MalleableShare(*seed, *jobs)
			return t, err
		}},
		{"E3", func() (*experiments.Table, error) { t, _, err := experiments.E3Schedulers(*seed, *jobs); return t, err }},
		{"E4", func() (*experiments.Table, error) {
			t, _, _, err := experiments.E4BurstBuffer(*seed, *jobs/3)
			return t, err
		}},
		{"E5", func() (*experiments.Table, error) { return experiments.E5Scalability(*seed) }},
		{"E6", func() (*experiments.Table, error) { t, _, err := experiments.E6Validation(); return t, err }},
		{"E7", func() (*experiments.Table, error) { t, _, err := experiments.E7Evolving(*seed); return t, err }},
		{"E8", func() (*experiments.Table, error) {
			t, _, err := experiments.E8ReconfigCost(*seed, *jobs)
			return t, err
		}},
		{"E9", func() (*experiments.Table, error) { t, _, err := experiments.E9Topology(*seed, *jobs); return t, err }},
		{"E10", func() (*experiments.Table, error) {
			t, _, err := experiments.E10Resilience(*seed, *jobs)
			return t, err
		}},
		{"A1", func() (*experiments.Table, error) { return experiments.AblationInvocation(*seed, *jobs) }},
		{"A2", func() (*experiments.Table, error) { return experiments.AblationFairness(*seed, *jobs/3) }},
		{"A3", func() (*experiments.Table, error) { return experiments.AblationMoldable(*seed, *jobs) }},
		{"A4", func() (*experiments.Table, error) { return experiments.AblationFairShare(*seed, *jobs) }},
		{"A5", func() (*experiments.Table, error) { return experiments.AblationFastPath(*seed) }},
	}
	for _, r := range reports {
		if !want(r.id) {
			continue
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		t, err := r.gen()
		if err != nil {
			return fmt.Errorf("%s: %w", r.id, err)
		}
		if *markdown {
			fmt.Print(t.Markdown())
		} else {
			t.Fprint(os.Stdout)
			fmt.Println()
		}
	}
	return nil
}

// diffSnapshots prints a before/after table of two telemetry snapshot
// files (comma-separated paths) written with -telemetry-out.
func diffSnapshots(spec string, markdown bool) error {
	paths := strings.Split(spec, ",")
	if len(paths) != 2 {
		return fmt.Errorf("-snapshot-diff wants two paths: before.json,after.json")
	}
	read := func(path string) (telemetry.Snapshot, error) {
		f, err := os.Open(strings.TrimSpace(path))
		if err != nil {
			return telemetry.Snapshot{}, err
		}
		defer f.Close()
		return telemetry.ReadSnapshot(f)
	}
	a, err := read(paths[0])
	if err != nil {
		return err
	}
	b, err := read(paths[1])
	if err != nil {
		return err
	}
	t := &experiments.Table{
		ID:     "SNAP",
		Title:  "Telemetry snapshot diff",
		Header: []string{"counter", "before", "after", "change"},
	}
	for _, row := range telemetry.Diff(a, b) {
		t.AddRow(row.Name,
			fmt.Sprintf("%g", row.A),
			fmt.Sprintf("%g", row.B),
			fmt.Sprintf("%+.1f%%", row.Change*100))
	}
	t.AddNote("wall.* and mem.* rows are machine-dependent; counters above them are deterministic")
	if markdown {
		fmt.Print(t.Markdown())
	} else {
		t.Fprint(os.Stdout)
	}
	return nil
}
