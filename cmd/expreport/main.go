// Command expreport regenerates every experiment of the reconstructed
// evaluation (E1–E10 plus the ablations) and prints the tables, optionally
// as markdown for EXPERIMENTS.md.
//
// Usage:
//
//	expreport                # all experiments, plain tables
//	expreport -only E2,E3    # a subset
//	expreport -markdown      # markdown output
//	expreport -jobs 150      # workload size for the batch experiments
//
// It also diffs self-profiling snapshots written by `elastisim
// -telemetry-out` or `sweep -telemetry-out`, for before/after comparisons
// of simulator-performance work:
//
//	expreport -snapshot-diff before.json,after.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/telemetry"
)

func main() {
	var (
		seed     = flag.Uint64("seed", 7, "workload seed")
		jobs     = flag.Int("jobs", 150, "job count for the batch experiments")
		only     = flag.String("only", "", "comma-separated experiment IDs (default: all)")
		markdown = flag.Bool("markdown", false, "emit markdown instead of plain tables")
		snapDiff = flag.String("snapshot-diff", "", "diff two telemetry snapshot JSON files: before.json,after.json")
	)
	flag.Parse()

	if *snapDiff != "" {
		if err := diffSnapshots(*snapDiff, *markdown); err != nil {
			fmt.Fprintln(os.Stderr, "expreport:", err)
			os.Exit(1)
		}
		return
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	want := func(id string) bool { return len(selected) == 0 || selected[id] }

	emit := func(t *experiments.Table, err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "expreport:", err)
			os.Exit(1)
		}
		if *markdown {
			fmt.Print(t.Markdown())
		} else {
			t.Fprint(os.Stdout)
			fmt.Println()
		}
	}

	if want("E1") {
		t, _, _, err := experiments.E1Utilization(*seed, *jobs)
		emit(t, err)
	}
	if want("E2") {
		t, _, err := experiments.E2MalleableShare(*seed, *jobs)
		emit(t, err)
	}
	if want("E3") {
		t, _, err := experiments.E3Schedulers(*seed, *jobs)
		emit(t, err)
	}
	if want("E4") {
		t, _, _, err := experiments.E4BurstBuffer(*seed, *jobs/3)
		emit(t, err)
	}
	if want("E5") {
		t, err := experiments.E5Scalability(*seed)
		emit(t, err)
	}
	if want("E6") {
		t, _, err := experiments.E6Validation()
		emit(t, err)
	}
	if want("E7") {
		t, _, err := experiments.E7Evolving(*seed)
		emit(t, err)
	}
	if want("E8") {
		t, _, err := experiments.E8ReconfigCost(*seed, *jobs)
		emit(t, err)
	}
	if want("E9") {
		t, _, err := experiments.E9Topology(*seed, *jobs)
		emit(t, err)
	}
	if want("E10") {
		t, _, err := experiments.E10Resilience(*seed, *jobs)
		emit(t, err)
	}
	if want("A1") {
		t, err := experiments.AblationInvocation(*seed, *jobs)
		emit(t, err)
	}
	if want("A2") {
		t, err := experiments.AblationFairness(*seed, *jobs/3)
		emit(t, err)
	}
	if want("A3") {
		t, err := experiments.AblationMoldable(*seed, *jobs)
		emit(t, err)
	}
	if want("A4") {
		t, err := experiments.AblationFairShare(*seed, *jobs)
		emit(t, err)
	}
	if want("A5") {
		t, err := experiments.AblationFastPath(*seed)
		emit(t, err)
	}
}

// diffSnapshots prints a before/after table of two telemetry snapshot
// files (comma-separated paths) written with -telemetry-out.
func diffSnapshots(spec string, markdown bool) error {
	paths := strings.Split(spec, ",")
	if len(paths) != 2 {
		return fmt.Errorf("-snapshot-diff wants two paths: before.json,after.json")
	}
	read := func(path string) (telemetry.Snapshot, error) {
		f, err := os.Open(strings.TrimSpace(path))
		if err != nil {
			return telemetry.Snapshot{}, err
		}
		defer f.Close()
		return telemetry.ReadSnapshot(f)
	}
	a, err := read(paths[0])
	if err != nil {
		return err
	}
	b, err := read(paths[1])
	if err != nil {
		return err
	}
	t := &experiments.Table{
		ID:     "SNAP",
		Title:  "Telemetry snapshot diff",
		Header: []string{"counter", "before", "after", "change"},
	}
	for _, row := range telemetry.Diff(a, b) {
		t.AddRow(row.Name,
			fmt.Sprintf("%g", row.A),
			fmt.Sprintf("%g", row.B),
			fmt.Sprintf("%+.1f%%", row.Change*100))
	}
	t.AddNote("wall.* and mem.* rows are machine-dependent; counters above them are deterministic")
	if markdown {
		fmt.Print(t.Markdown())
	} else {
		t.Fprint(os.Stdout)
	}
	return nil
}
