// Command sweep runs a parameter-grid study (algorithms × malleable
// shares × seeds) and emits one CSV row per cell, ready for external
// plotting.
//
// Usage:
//
//	sweep -algorithms fcfs,easy,adaptive -shares 0,0.25,0.5,0.75,1 \
//	      -seeds 1,2,3 -jobs 150 -workers 0 > grid.csv
//
// Cells run concurrently (-workers; 0 means one per CPU). The CSV is
// bit-identical for any worker count — only wall-clock columns vary.
//
// Ctrl-C stops the sweep gracefully: in-flight simulations stop between
// events, the CSV rows of every completed cell are flushed to stdout, and
// the process exits with code 130.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/cli"
	"repro/internal/experiments"
	"repro/internal/telemetry"
)

func main() { cli.Main("sweep", run) }

func run(ctx context.Context) error {
	var (
		algorithms   = flag.String("algorithms", "fcfs,easy,adaptive", "comma-separated algorithm names")
		shares       = flag.String("shares", "0,0.5,1", "comma-separated malleable shares in [0,1]")
		seeds        = flag.String("seeds", "1", "comma-separated workload seeds")
		jobs         = flag.Int("jobs", 100, "jobs per run")
		nodes        = flag.Int("nodes", 128, "machine size")
		workers      = flag.Int("workers", 0, "concurrent grid cells (0 = one per CPU, 1 = sequential)")
		progress     = flag.Bool("progress", false, "print per-cell progress to stderr")
		telemetryOut = flag.String("telemetry-out", "", "write the aggregated self-profiling snapshot JSON to this path")
		cpuProfile   = flag.String("cpuprofile", "", "write a pprof CPU profile to this path")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	cfg := experiments.SweepConfig{Jobs: *jobs, Nodes: *nodes, Workers: *workers}
	cfg.Algorithms = strings.Split(*algorithms, ",")
	for _, s := range strings.Split(*shares, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || v < 0 || v > 1 {
			return cli.Usagef("bad share %q", s)
		}
		cfg.Shares = append(cfg.Shares, v)
	}
	for _, s := range strings.Split(*seeds, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return cli.Usagef("bad seed %q", s)
		}
		cfg.Seeds = append(cfg.Seeds, v)
	}

	var prog *telemetry.CellProgress
	if *progress {
		cells := len(cfg.Algorithms) * len(cfg.Shares) * len(cfg.Seeds)
		prog = &telemetry.CellProgress{W: os.Stderr, Total: cells}
		cfg.OnCellDone = prog.CellDone
	}
	pts, done, err := experiments.SweepContext(ctx, cfg)
	if prog != nil {
		prog.Done()
	}
	if err != nil && ctx.Err() == nil {
		return err
	}
	// Keep the rows of completed cells — on interrupt that's the partial
	// grid worth flushing; on a clean run it's everything.
	completed := pts[:0:0]
	for i, d := range done {
		if d {
			completed = append(completed, pts[i])
		}
	}
	if werr := experiments.WriteSweepCSV(os.Stdout, completed); werr != nil {
		return werr
	}
	if *telemetryOut != "" {
		agg := experiments.AggregateSnapshots(completed)
		f, ferr := os.Create(*telemetryOut)
		if ferr != nil {
			return ferr
		}
		if werr := agg.WriteJSON(f); werr != nil {
			f.Close()
			return werr
		}
		if cerr := f.Close(); cerr != nil {
			return cerr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: cancelled after %d/%d cells; flushed the completed rows\n", len(completed), len(pts))
		return err
	}
	fmt.Fprintf(os.Stderr, "sweep: %d cells\n", len(completed))
	return nil
}
