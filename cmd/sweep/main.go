// Command sweep runs a parameter-grid study (algorithms × malleable
// shares × seeds) and emits one CSV row per cell, ready for external
// plotting.
//
// Usage:
//
//	sweep -algorithms fcfs,easy,adaptive -shares 0,0.25,0.5,0.75,1 \
//	      -seeds 1,2,3 -jobs 150 -workers 0 > grid.csv
//
// Cells run concurrently (-workers; 0 means one per CPU). The CSV is
// bit-identical for any worker count — only wall-clock columns vary.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/telemetry"
)

func main() {
	var (
		algorithms   = flag.String("algorithms", "fcfs,easy,adaptive", "comma-separated algorithm names")
		shares       = flag.String("shares", "0,0.5,1", "comma-separated malleable shares in [0,1]")
		seeds        = flag.String("seeds", "1", "comma-separated workload seeds")
		jobs         = flag.Int("jobs", 100, "jobs per run")
		nodes        = flag.Int("nodes", 128, "machine size")
		workers      = flag.Int("workers", 0, "concurrent grid cells (0 = one per CPU, 1 = sequential)")
		progress     = flag.Bool("progress", false, "print per-cell progress to stderr")
		telemetryOut = flag.String("telemetry-out", "", "write the aggregated self-profiling snapshot JSON to this path")
		cpuProfile   = flag.String("cpuprofile", "", "write a pprof CPU profile to this path")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	cfg := experiments.SweepConfig{Jobs: *jobs, Nodes: *nodes, Workers: *workers}
	cfg.Algorithms = strings.Split(*algorithms, ",")
	for _, s := range strings.Split(*shares, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || v < 0 || v > 1 {
			fatal(fmt.Errorf("bad share %q", s))
		}
		cfg.Shares = append(cfg.Shares, v)
	}
	for _, s := range strings.Split(*seeds, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
		if err != nil {
			fatal(fmt.Errorf("bad seed %q", s))
		}
		cfg.Seeds = append(cfg.Seeds, v)
	}

	var prog *telemetry.CellProgress
	if *progress {
		cells := len(cfg.Algorithms) * len(cfg.Shares) * len(cfg.Seeds)
		prog = &telemetry.CellProgress{W: os.Stderr, Total: cells}
		cfg.OnCellDone = prog.CellDone
	}
	pts, err := experiments.Sweep(cfg)
	if prog != nil {
		prog.Done()
	}
	if err != nil {
		fatal(err)
	}
	if err := experiments.WriteSweepCSV(os.Stdout, pts); err != nil {
		fatal(err)
	}
	if *telemetryOut != "" {
		agg := experiments.AggregateSnapshots(pts)
		f, err := os.Create(*telemetryOut)
		if err != nil {
			fatal(err)
		}
		if err := agg.WriteJSON(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "sweep: %d cells\n", len(pts))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
