// Command sweep runs a parameter-grid study (algorithms × malleable
// shares × seeds) and emits one CSV row per cell, ready for external
// plotting.
//
// Usage:
//
//	sweep -algorithms fcfs,easy,adaptive -shares 0,0.25,0.5,0.75,1 \
//	      -seeds 1,2,3 -jobs 150 -workers 0 > grid.csv
//
// Cells run concurrently (-workers; 0 means one per CPU). The CSV is
// bit-identical for any worker count — only wall-clock columns vary.
//
// Ctrl-C stops the sweep gracefully: in-flight simulations stop between
// events, the CSV rows of every completed cell are flushed to stdout, and
// the process exits with code 130.
//
// # Journaled and resumable sweeps
//
// With -journal the grid runs through the distwork core: every cell is a
// journaled task, and a killed sweep restarted with -resume re-runs only
// the cells that had not finished — completed cells replay from the
// journal. Journaled results are canonicalized (wall_ms is 0), so the
// resumed CSV is byte-identical to an uninterrupted run.
//
//	sweep -journal grid.jsonl > grid.csv            # start
//	sweep -journal grid.jsonl -resume > grid.csv    # continue after a kill
//
// # Distributed sweeps
//
// A coordinator leases cells to remote workers over HTTP; workers claim,
// heartbeat, and return cell results. A worker that dies mid-cell stops
// heartbeating, its lease expires, and the cell is stolen by a survivor.
//
//	sweep -serve 127.0.0.1:9180 -journal grid.jsonl > grid.csv
//	sweep -connect http://127.0.0.1:9180 -worker-name w1 &
//	sweep -connect http://127.0.0.1:9180 -worker-name w2 &
//
// The coordinator also serves GET /metrics (sweep_cell_claims_total,
// sweep_cell_steals_total, sweep_lease_expirations_total, ...).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/distwork"
	"repro/internal/experiments"
	"repro/internal/httpapi"
	"repro/internal/obs"
	"repro/internal/telemetry"
)

func main() { cli.Main("sweep", run) }

func run(ctx context.Context) error {
	var (
		algorithms   = flag.String("algorithms", "fcfs,easy,adaptive", "comma-separated algorithm names")
		shares       = flag.String("shares", "0,0.5,1", "comma-separated malleable shares in [0,1]")
		seeds        = flag.String("seeds", "1", "comma-separated workload seeds")
		jobs         = flag.Int("jobs", 100, "jobs per run")
		nodes        = flag.Int("nodes", 128, "machine size")
		workers      = flag.Int("workers", 0, "concurrent grid cells (0 = one per CPU, 1 = sequential)")
		progress     = flag.Bool("progress", false, "print per-cell progress to stderr")
		telemetryOut = flag.String("telemetry-out", "", "write the aggregated self-profiling snapshot JSON to this path")
		cpuProfile   = flag.String("cpuprofile", "", "write a pprof CPU profile to this path")
		journalPath  = flag.String("journal", "", "journal grid cells to this JSONL file (resumable)")
		resume       = flag.Bool("resume", false, "continue an existing -journal instead of refusing to overwrite it")
		serveAddr    = flag.String("serve", "", "coordinator mode: lease cells to HTTP workers on this address")
		connectURL   = flag.String("connect", "", "worker mode: claim cells from this coordinator URL")
		workerName   = flag.String("worker-name", "", "worker name in -connect mode (default worker-<pid>)")
		lease        = flag.Duration("lease", time.Minute, "claim lease for journaled/distributed cells")
	)
	flag.Parse()

	if *serveAddr != "" && *connectURL != "" {
		return cli.Usagef("-serve and -connect are mutually exclusive")
	}
	if *resume && *journalPath == "" {
		return cli.Usagef("-resume requires -journal")
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	if *connectURL != "" {
		return runWorker(ctx, *connectURL, *workerName)
	}

	cfg := experiments.SweepConfig{Jobs: *jobs, Nodes: *nodes, Workers: *workers}
	cfg.Algorithms = strings.Split(*algorithms, ",")
	for _, s := range strings.Split(*shares, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || v < 0 || v > 1 {
			return cli.Usagef("bad share %q", s)
		}
		cfg.Shares = append(cfg.Shares, v)
	}
	for _, s := range strings.Split(*seeds, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return cli.Usagef("bad seed %q", s)
		}
		cfg.Seeds = append(cfg.Seeds, v)
	}

	var prog *telemetry.CellProgress
	if *progress {
		cells := len(cfg.Algorithms) * len(cfg.Shares) * len(cfg.Seeds)
		prog = &telemetry.CellProgress{W: os.Stderr, Total: cells}
	}

	var (
		pts  []experiments.SweepPoint
		done []bool
		err  error
	)
	switch {
	case *serveAddr != "":
		pts, done, err = runCoordinator(ctx, *serveAddr, *journalPath, cfg, *resume, *lease, prog)
	case *journalPath != "":
		pts, done, err = runJournaled(ctx, *journalPath, cfg, *resume, *lease, prog)
	default:
		if prog != nil {
			cfg.OnCellDone = prog.CellDone
		}
		pts, done, err = experiments.SweepContext(ctx, cfg)
	}
	if prog != nil {
		prog.Done()
	}
	if err != nil && ctx.Err() == nil {
		return err
	}
	// Keep the rows of completed cells in cell-index order — on interrupt
	// that's the partial grid worth flushing; on a clean run it's
	// everything.
	completed := experiments.FilterCompleted(pts, done)
	if werr := experiments.WriteSweepCSV(os.Stdout, completed); werr != nil {
		return werr
	}
	if *telemetryOut != "" {
		agg := experiments.AggregateSnapshots(completed)
		f, ferr := os.Create(*telemetryOut)
		if ferr != nil {
			return ferr
		}
		if werr := agg.WriteJSON(f); werr != nil {
			f.Close()
			return werr
		}
		if cerr := f.Close(); cerr != nil {
			return cerr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: cancelled after %d/%d cells; flushed the completed rows\n", len(completed), len(pts))
		return err
	}
	fmt.Fprintf(os.Stderr, "sweep: %d cells\n", len(completed))
	return nil
}

// runJournaled runs the grid locally through the distwork journal:
// killed runs restart with -resume from the first unfinished cell.
func runJournaled(ctx context.Context, path string, cfg experiments.SweepConfig, resume bool, lease time.Duration, prog *telemetry.CellProgress) ([]experiments.SweepPoint, []bool, error) {
	grid, err := experiments.OpenGrid(path, cfg, experiments.GridOptions{
		Workers:    cfg.Workers,
		Lease:      lease,
		Resume:     resume,
		OnCellDone: progHook(prog),
	})
	if err != nil {
		return nil, nil, err
	}
	defer grid.Close()
	return grid.Run(ctx)
}

// runCoordinator serves the grid's cells to HTTP workers and blocks
// until every cell is terminal. The coordinator runs no cells itself —
// it journals claims and results, expires lapsed leases so dead
// workers' cells get stolen, and exposes sweep_* metrics.
func runCoordinator(ctx context.Context, addr, path string, cfg experiments.SweepConfig, resume bool, lease time.Duration, prog *telemetry.CellProgress) ([]experiments.SweepPoint, []bool, error) {
	reg := obs.NewRegistry()
	grid, err := experiments.OpenGrid(path, cfg, experiments.GridOptions{
		Lease:      lease,
		Resume:     resume,
		Metrics:    reg,
		OnCellDone: progHook(prog),
	})
	if err != nil {
		return nil, nil, err
	}
	defer grid.Close()
	store := grid.Store()

	mux := http.NewServeMux()
	api := &httpapi.LeaseAPI[experiments.GridCell]{Store: store}
	api.Register(mux)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "sweep: coordinator listening on %s (%d cells)\n", ln.Addr(), len(grid.Cells()))

	// Expired leases requeue on a timer so a dead worker's cells return
	// to pending even when no claim traffic is arriving.
	expire := time.NewTicker(lease / 2)
	defer expire.Stop()
	settled := make(chan error, 1)
	go func() { settled <- store.WaitSettled(ctx) }()
	var waitErr error
loop:
	for {
		select {
		case <-expire.C:
			store.ExpireLeases()
		case waitErr = <-settled:
			break loop
		case err := <-serveErr:
			return nil, nil, fmt.Errorf("coordinator: %w", err)
		}
	}

	// Let surviving workers observe settled=true on their next claim poll
	// before the listener goes away — otherwise their final claim races
	// the shutdown and they report a lost coordinator.
	if waitErr == nil {
		sleepCtx(ctx, time.Second)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	_ = srv.Shutdown(shutCtx)

	pts, done, err := grid.Collect()
	fmt.Fprintf(os.Stderr, "sweep: coordinator settled: cells=%d claims=%d steals=%d lease_expirations=%d\n",
		len(grid.Cells()),
		reg.Counter("sweep_cell_claims_total").Value(),
		reg.Counter("sweep_cell_steals_total").Value(),
		reg.Counter("sweep_lease_expirations_total").Value())
	if err != nil {
		return pts, done, err
	}
	if waitErr != nil && ctx.Err() != nil {
		return pts, done, ctx.Err()
	}
	return pts, done, waitErr
}

// runWorker claims cells from a coordinator, executes them locally, and
// returns results, heartbeating at a third of the coordinator's lease.
// It exits when the coordinator reports the grid settled, keeps polling
// through empty claims, and tolerates an unreachable coordinator only
// before first contact (it retries ~10s, then gives up).
func runWorker(ctx context.Context, base, name string) error {
	if name == "" {
		name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	client := &httpapi.LeaseClient[experiments.GridCell]{Base: strings.TrimRight(base, "/")}
	contacted := false
	contactTries := 20 // 20 × 500ms ≈ 10s of pre-contact patience
	var cells int
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		task, settled, lease, err := client.Claim(ctx, name)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if contacted {
				return fmt.Errorf("worker %s: lost coordinator after %d cells: %w", name, cells, err)
			}
			var st *httpapi.LeaseStatusError
			if errors.As(err, &st) {
				return fmt.Errorf("worker %s: %w", name, err)
			}
			// Not up yet: retry for a while before giving up.
			contactTries--
			if contactTries <= 0 || !sleepCtx(ctx, 500*time.Millisecond) {
				return fmt.Errorf("worker %s: cannot reach coordinator %s: %w", name, base, err)
			}
			continue
		}
		contacted = true
		if task == nil {
			if settled {
				fmt.Fprintf(os.Stderr, "sweep: worker %s done: %d cells\n", name, cells)
				return nil
			}
			if !sleepCtx(ctx, 250*time.Millisecond) {
				return ctx.Err()
			}
			continue
		}
		if err := runClaimedCell(ctx, client, name, *task, lease); err != nil {
			return err
		}
		cells++
	}
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

// runClaimedCell executes one leased cell: heartbeat in the background,
// simulate, settle. On shutdown mid-cell the claim is released so
// another worker picks it up immediately instead of waiting out the
// lease.
func runClaimedCell(ctx context.Context, client *httpapi.LeaseClient[experiments.GridCell], name string, task distwork.Task[experiments.GridCell], lease time.Duration) error {
	hbCtx, stopHB := context.WithCancel(context.Background())
	defer stopHB()
	go func() {
		tick := time.NewTicker(lease / 3)
		defer tick.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-tick.C:
				if err := client.Heartbeat(hbCtx, task.ID, name); err != nil {
					return // lease lost: the coordinator gave the cell away
				}
			}
		}
	}()
	pt, err := experiments.RunCell(ctx, task.Payload)
	stopHB()
	if err != nil {
		if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
			relCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			_ = client.Release(relCtx, task.ID, name, fmt.Sprintf("worker %s interrupted; requeued", name))
			return ctx.Err()
		}
		// Cell-level failure: settle it as failed and keep claiming —
		// other cells may still succeed, and the coordinator surfaces the
		// error after the grid settles.
		finCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if ferr := client.Finish(finCtx, task.ID, name, "", err.Error()); ferr != nil {
			var st *httpapi.LeaseStatusError
			if !errors.As(ferr, &st) || st.Status != http.StatusConflict {
				return ferr
			}
		}
		return nil
	}
	enc, err := experiments.EncodeCellResult(pt)
	if err != nil {
		return err
	}
	// Settle with a fresh context: if shutdown raced the finish, the
	// result is already computed and worth delivering.
	finCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := client.Finish(finCtx, task.ID, name, enc, ""); err != nil {
		var st *httpapi.LeaseStatusError
		if errors.As(err, &st) && st.Status == http.StatusConflict {
			return nil // lease expired mid-run and the cell was stolen; the newer claim wins
		}
		return err
	}
	return nil
}

func progHook(prog *telemetry.CellProgress) func() {
	if prog == nil {
		return nil
	}
	return prog.CellDone
}
