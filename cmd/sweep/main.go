// Command sweep runs a parameter-grid study (algorithms × malleable
// shares × seeds) and emits one CSV row per cell, ready for external
// plotting.
//
// Usage:
//
//	sweep -algorithms fcfs,easy,adaptive -shares 0,0.25,0.5,0.75,1 \
//	      -seeds 1,2,3 -jobs 150 -workers 0 > grid.csv
//
// Cells run concurrently (-workers; 0 means one per CPU). The CSV is
// bit-identical for any worker count — only wall-clock columns vary.
//
// Ctrl-C stops the sweep gracefully: in-flight simulations stop between
// events, the CSV rows of every completed cell are flushed to stdout, and
// the process exits with code 130.
//
// # Journaled and resumable sweeps
//
// With -journal the grid runs through the distwork core: every cell is a
// journaled task, and a killed sweep restarted with -resume re-runs only
// the cells that had not finished — completed cells replay from the
// journal. Journaled results are canonicalized (wall_ms is 0), so the
// resumed CSV is byte-identical to an uninterrupted run.
//
//	sweep -journal grid.jsonl > grid.csv            # start
//	sweep -journal grid.jsonl -resume > grid.csv    # continue after a kill
//
// # Distributed sweeps
//
// A coordinator leases cells to remote workers over HTTP; workers claim,
// heartbeat, and return cell results. A worker that dies mid-cell stops
// heartbeating, its lease expires, and the cell is stolen by a survivor.
//
//	sweep -serve 127.0.0.1:9180 -journal grid.jsonl > grid.csv
//	sweep -connect http://127.0.0.1:9180 -worker-name w1 &
//	sweep -connect http://127.0.0.1:9180 -worker-name w2 &
//
// The coordinator also serves GET /metrics (sweep_cell_claims_total,
// sweep_cell_steals_total, sweep_lease_expirations_total, ...).
//
// # Million-cell grids
//
// The grid is enumerated lazily from a deterministic cursor and, when
// journaled, settled cells are evicted from memory (the journal holds
// the results; the final CSV streams them back out), so coordinator
// memory is O(active cells), not O(grid). Three flags tune the path:
// -shards N hash-shards the journal across N files, -group-commit d
// batches fsyncs into one flush per window (appends are still written
// through, so a process kill loses nothing), and workers pass
// -lease-batch N to claim/heartbeat/finish N cells per HTTP round-trip
// with per-item settlement. All default off; -resume migrates a journal
// between layouts and refuses a journal written for a different grid.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/elastisim"
	"repro/internal/cli"
	"repro/internal/distwork"
	"repro/internal/experiments"
	"repro/internal/httpapi"
	"repro/internal/obs"
	"repro/internal/telemetry"
)

func main() { cli.Main("sweep", run) }

func run(ctx context.Context) error {
	var (
		algorithms   = flag.String("algorithms", "fcfs,easy,adaptive", "comma-separated algorithm names")
		shares       = flag.String("shares", "0,0.5,1", "comma-separated malleable shares in [0,1]")
		seeds        = flag.String("seeds", "1", "comma-separated workload seeds")
		jobs         = flag.Int("jobs", 100, "jobs per run")
		nodes        = flag.Int("nodes", 128, "machine size")
		workers      = flag.Int("workers", 0, "concurrent grid cells (0 = one per CPU, 1 = sequential)")
		progress     = flag.Bool("progress", false, "print per-cell progress to stderr")
		telemetryOut = flag.String("telemetry-out", "", "write the aggregated self-profiling snapshot JSON to this path")
		cpuProfile   = flag.String("cpuprofile", "", "write a pprof CPU profile to this path")
		journalPath  = flag.String("journal", "", "journal grid cells to this JSONL file (resumable)")
		resume       = flag.Bool("resume", false, "continue an existing -journal instead of refusing to overwrite it")
		shards       = flag.Int("shards", 0, "hash-shard the journal across this many files (0 = one file)")
		groupCommit  = flag.Duration("group-commit", 0, "batch journal fsyncs into one flush per window (0 = fsync every transition)")
		serveAddr    = flag.String("serve", "", "coordinator mode: lease cells to HTTP workers on this address")
		connectURL   = flag.String("connect", "", "worker mode: claim cells from this coordinator URL")
		workerName   = flag.String("worker-name", "", "worker name in -connect mode (default worker-<pid>)")
		lease        = flag.Duration("lease", time.Minute, "claim lease for journaled/distributed cells")
		leaseBatch   = flag.Int("lease-batch", 1, "cells to claim per coordinator round trip in -connect mode")
	)
	flag.Parse()

	if *serveAddr != "" && *connectURL != "" {
		return cli.Usagef("-serve and -connect are mutually exclusive")
	}
	if *resume && *journalPath == "" {
		return cli.Usagef("-resume requires -journal")
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	if *connectURL != "" {
		return runWorker(ctx, *connectURL, *workerName, *leaseBatch)
	}

	cfg := experiments.SweepConfig{Jobs: *jobs, Nodes: *nodes, Workers: *workers}
	cfg.Algorithms = strings.Split(*algorithms, ",")
	for _, s := range strings.Split(*shares, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || v < 0 || v > 1 {
			return cli.Usagef("bad share %q", s)
		}
		cfg.Shares = append(cfg.Shares, v)
	}
	for _, s := range strings.Split(*seeds, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return cli.Usagef("bad seed %q", s)
		}
		cfg.Seeds = append(cfg.Seeds, v)
	}

	var prog *telemetry.CellProgress
	if *progress {
		cells := len(cfg.Algorithms) * len(cfg.Shares) * len(cfg.Seeds)
		prog = &telemetry.CellProgress{W: os.Stderr, Total: cells}
	}

	if *serveAddr != "" || *journalPath != "" {
		gopts := experiments.GridOptions{
			Workers:     cfg.Workers,
			Lease:       *lease,
			Resume:      *resume,
			Shards:      *shards,
			GroupCommit: *groupCommit,
			OnCellDone:  progHook(prog),
		}
		var (
			grid   *experiments.Grid
			runErr error
		)
		if *serveAddr != "" {
			grid, runErr = runCoordinator(ctx, *serveAddr, *journalPath, cfg, gopts)
		} else {
			grid, runErr = runJournaled(ctx, *journalPath, cfg, gopts)
		}
		if prog != nil {
			prog.Done()
		}
		if grid == nil {
			return runErr
		}
		defer grid.Close()
		if runErr != nil && ctx.Err() == nil {
			return runErr
		}
		// Stream the completed rows out of the journal in cell-index order —
		// on interrupt that's the partial grid worth flushing; on a clean run
		// it's everything. Results never pass through a grid-sized slice.
		var agg *elastisim.TelemetrySnapshot
		if *telemetryOut != "" {
			agg = &elastisim.TelemetrySnapshot{}
		}
		rows, werr := grid.EmitCSV(os.Stdout, agg)
		if werr != nil {
			return werr
		}
		if agg != nil {
			if ferr := writeSnapshot(*telemetryOut, *agg); ferr != nil {
				return ferr
			}
		}
		if runErr != nil {
			fmt.Fprintf(os.Stderr, "sweep: cancelled after %d/%d cells; flushed the completed rows\n", rows, grid.Size())
			return runErr
		}
		fmt.Fprintf(os.Stderr, "sweep: %d cells\n", rows)
		return nil
	}

	if prog != nil {
		cfg.OnCellDone = prog.CellDone
	}
	pts, done, err := experiments.SweepContext(ctx, cfg)
	if prog != nil {
		prog.Done()
	}
	if err != nil && ctx.Err() == nil {
		return err
	}
	// Keep the rows of completed cells in cell-index order — on interrupt
	// that's the partial grid worth flushing; on a clean run it's
	// everything.
	completed := experiments.FilterCompleted(pts, done)
	if werr := experiments.WriteSweepCSV(os.Stdout, completed); werr != nil {
		return werr
	}
	if *telemetryOut != "" {
		if ferr := writeSnapshot(*telemetryOut, experiments.AggregateSnapshots(completed)); ferr != nil {
			return ferr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: cancelled after %d/%d cells; flushed the completed rows\n", len(completed), len(pts))
		return err
	}
	fmt.Fprintf(os.Stderr, "sweep: %d cells\n", len(completed))
	return nil
}

func writeSnapshot(path string, agg elastisim.TelemetrySnapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := agg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runJournaled runs the grid locally through the distwork journal:
// killed runs restart with -resume from the first unfinished cell. The
// returned grid (non-nil whenever the journal opened) is what the
// caller streams the CSV from.
func runJournaled(ctx context.Context, path string, cfg experiments.SweepConfig, gopts experiments.GridOptions) (*experiments.Grid, error) {
	grid, err := experiments.OpenGrid(path, cfg, gopts)
	if err != nil {
		return nil, err
	}
	return grid, grid.Run(ctx)
}

// runCoordinator serves the grid's cells to HTTP workers and blocks
// until every cell is terminal. The coordinator runs no cells itself —
// it journals claims and results, expires lapsed leases so dead
// workers' cells get stolen, and exposes sweep_* metrics.
func runCoordinator(ctx context.Context, addr, path string, cfg experiments.SweepConfig, gopts experiments.GridOptions) (*experiments.Grid, error) {
	reg := obs.NewRegistry()
	gopts.Metrics = reg
	grid, err := experiments.OpenGrid(path, cfg, gopts)
	if err != nil {
		return nil, err
	}
	store := grid.Store()
	lease := store.Lease()

	mux := http.NewServeMux()
	api := &httpapi.LeaseAPI[experiments.GridCell]{Store: store}
	api.Register(mux)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		grid.Close()
		return nil, err
	}
	srv := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "sweep: coordinator listening on %s (%d cells)\n", ln.Addr(), grid.Size())

	// Expired leases requeue on a timer so a dead worker's cells return
	// to pending even when no claim traffic is arriving.
	expire := time.NewTicker(lease / 2)
	defer expire.Stop()
	settled := make(chan error, 1)
	go func() { settled <- store.WaitSettled(ctx) }()
	var waitErr error
loop:
	for {
		select {
		case <-expire.C:
			store.ExpireLeases()
		case waitErr = <-settled:
			break loop
		case err := <-serveErr:
			return grid, fmt.Errorf("coordinator: %w", err)
		}
	}

	// Let surviving workers observe settled=true on their next claim poll
	// before the listener goes away — otherwise their final claim races
	// the shutdown and they report a lost coordinator.
	if waitErr == nil {
		sleepCtx(ctx, time.Second)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	_ = srv.Shutdown(shutCtx)

	fmt.Fprintf(os.Stderr, "sweep: coordinator settled: cells=%d claims=%d steals=%d lease_expirations=%d\n",
		grid.Size(),
		reg.Counter("sweep_cell_claims_total").Value(),
		reg.Counter("sweep_cell_steals_total").Value(),
		reg.Counter("sweep_lease_expirations_total").Value())
	if waitErr != nil {
		if ctx.Err() != nil {
			return grid, ctx.Err()
		}
		return grid, waitErr
	}
	return grid, grid.Err()
}

// runWorker claims cells from a coordinator, executes them locally, and
// returns results, heartbeating at a third of the coordinator's lease.
// It exits when the coordinator reports the grid settled, keeps polling
// through empty claims, and tolerates an unreachable coordinator only
// before first contact (it retries ~10s, then gives up). With batch > 1
// it leases batch cells per round trip and settles them with one
// finish-batch request — the amortized protocol for grids whose cells
// are much shorter than a network round trip.
func runWorker(ctx context.Context, base, name string, batch int) error {
	if name == "" {
		name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	if batch < 1 {
		batch = 1
	}
	client := &httpapi.LeaseClient[experiments.GridCell]{Base: strings.TrimRight(base, "/")}
	contacted := false
	contactTries := 20 // 20 × 500ms ≈ 10s of pre-contact patience
	var cells int
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var (
			tasks   []distwork.Task[experiments.GridCell]
			settled bool
			lease   time.Duration
			err     error
		)
		if batch > 1 {
			tasks, settled, lease, err = client.ClaimBatch(ctx, name, batch)
		} else {
			var task *distwork.Task[experiments.GridCell]
			task, settled, lease, err = client.Claim(ctx, name)
			if task != nil {
				tasks = []distwork.Task[experiments.GridCell]{*task}
			}
		}
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if contacted {
				return fmt.Errorf("worker %s: lost coordinator after %d cells: %w", name, cells, err)
			}
			var st *httpapi.LeaseStatusError
			if errors.As(err, &st) {
				return fmt.Errorf("worker %s: %w", name, err)
			}
			// Not up yet: retry for a while before giving up.
			contactTries--
			if contactTries <= 0 || !sleepCtx(ctx, 500*time.Millisecond) {
				return fmt.Errorf("worker %s: cannot reach coordinator %s: %w", name, base, err)
			}
			continue
		}
		contacted = true
		if len(tasks) == 0 {
			if settled {
				fmt.Fprintf(os.Stderr, "sweep: worker %s done: %d cells\n", name, cells)
				return nil
			}
			if !sleepCtx(ctx, 250*time.Millisecond) {
				return ctx.Err()
			}
			continue
		}
		if batch > 1 {
			n, err := runClaimedBatch(ctx, client, name, tasks, lease)
			cells += n
			if err != nil {
				return err
			}
		} else {
			if err := runClaimedCell(ctx, client, name, tasks[0], lease); err != nil {
				return err
			}
			cells++
		}
	}
}

// runClaimedBatch executes a batch of leased cells sequentially: one
// background ticker heartbeats every still-claimed cell in a single
// request, results accumulate locally, and one finish-batch call
// settles everything at the end. A stolen cell's 409 is tolerated per
// item (the newer claim's result wins); an interrupt releases the cells
// that never ran after delivering the results already computed.
func runClaimedBatch(ctx context.Context, client *httpapi.LeaseClient[experiments.GridCell], name string, tasks []distwork.Task[experiments.GridCell], lease time.Duration) (int, error) {
	ids := make([]string, len(tasks))
	for i, t := range tasks {
		ids[i] = t.ID
	}
	hbCtx, stopHB := context.WithCancel(context.Background())
	defer stopHB()
	go func() {
		tick := time.NewTicker(lease / 3)
		defer tick.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-tick.C:
				// Per-item errors are expected (finished or stolen cells);
				// only a dead coordinator stops the ticker.
				if _, err := client.HeartbeatBatch(hbCtx, name, ids); err != nil {
					return
				}
			}
		}
	}()
	var items []distwork.FinishItem
	ran := 0
	for ; ran < len(tasks); ran++ {
		if ctx.Err() != nil {
			break
		}
		task := tasks[ran]
		pt, err := experiments.RunCell(ctx, task.Payload)
		if err != nil {
			if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
				break
			}
			items = append(items, distwork.FinishItem{ID: task.ID, Error: err.Error()})
			continue
		}
		enc, err := experiments.EncodeCellResult(pt)
		if err != nil {
			stopHB()
			return 0, err
		}
		items = append(items, distwork.FinishItem{ID: task.ID, Result: enc})
	}
	stopHB()
	// Settle with a fresh context: computed results are worth delivering
	// even when the interrupt arrived mid-batch.
	finCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	done := 0
	if len(items) > 0 {
		errs, err := client.FinishBatch(finCtx, name, items)
		if err != nil {
			return 0, err
		}
		for i, ierr := range errs {
			if ierr == nil {
				done++
				continue
			}
			var st *httpapi.LeaseStatusError
			if errors.As(ierr, &st) && st.Status == http.StatusConflict {
				continue // stolen mid-run; the newer claim wins
			}
			return done, fmt.Errorf("finishing cell %s: %w", items[i].ID, ierr)
		}
	}
	if ctx.Err() != nil {
		// Release the cells that never ran so another worker picks them up
		// immediately instead of waiting out the lease.
		for _, task := range tasks[ran:] {
			_ = client.Release(finCtx, task.ID, name, fmt.Sprintf("worker %s interrupted; requeued", name))
		}
		return done, ctx.Err()
	}
	return done, nil
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

// runClaimedCell executes one leased cell: heartbeat in the background,
// simulate, settle. On shutdown mid-cell the claim is released so
// another worker picks it up immediately instead of waiting out the
// lease.
func runClaimedCell(ctx context.Context, client *httpapi.LeaseClient[experiments.GridCell], name string, task distwork.Task[experiments.GridCell], lease time.Duration) error {
	hbCtx, stopHB := context.WithCancel(context.Background())
	defer stopHB()
	go func() {
		tick := time.NewTicker(lease / 3)
		defer tick.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-tick.C:
				if err := client.Heartbeat(hbCtx, task.ID, name); err != nil {
					return // lease lost: the coordinator gave the cell away
				}
			}
		}
	}()
	pt, err := experiments.RunCell(ctx, task.Payload)
	stopHB()
	if err != nil {
		if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
			relCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			_ = client.Release(relCtx, task.ID, name, fmt.Sprintf("worker %s interrupted; requeued", name))
			return ctx.Err()
		}
		// Cell-level failure: settle it as failed and keep claiming —
		// other cells may still succeed, and the coordinator surfaces the
		// error after the grid settles.
		finCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if ferr := client.Finish(finCtx, task.ID, name, "", err.Error()); ferr != nil {
			var st *httpapi.LeaseStatusError
			if !errors.As(ferr, &st) || st.Status != http.StatusConflict {
				return ferr
			}
		}
		return nil
	}
	enc, err := experiments.EncodeCellResult(pt)
	if err != nil {
		return err
	}
	// Settle with a fresh context: if shutdown raced the finish, the
	// result is already computed and worth delivering.
	finCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := client.Finish(finCtx, task.ID, name, enc, ""); err != nil {
		var st *httpapi.LeaseStatusError
		if errors.As(err, &st) && st.Status == http.StatusConflict {
			return nil // lease expired mid-run and the cell was stolen; the newer claim wins
		}
		return err
	}
	return nil
}

func progHook(prog *telemetry.CellProgress) func() {
	if prog == nil {
		return nil
	}
	return prog.CellDone
}
