// Command workgen generates reproducible synthetic workloads in the
// simulator's JSON format.
//
// Usage:
//
//	workgen -count 200 -seed 7 -machine-nodes 128 -malleable 0.5 > jobs.json
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"

	"repro/elastisim"
	"repro/internal/cli"
	"repro/internal/job"
)

func main() { cli.Main("workgen", run) }

func run(ctx context.Context) error {
	var (
		count     = flag.Int("count", 100, "number of jobs")
		seed      = flag.Uint64("seed", 1, "generator seed")
		nodes     = flag.Int("machine-nodes", 128, "machine size (caps allocations)")
		minNodes  = flag.Int("min-nodes", 2, "smallest base allocation (power of two)")
		maxNodes  = flag.Int("max-nodes", 64, "largest base allocation (power of two)")
		nodeSpeed = flag.Float64("node-speed", 100e9, "node speed in flops/s")
		rate      = flag.Float64("rate", 1.0/18, "Poisson arrival rate (jobs/s)")
		arrival   = flag.String("arrival", "poisson", "arrival process: poisson, weibull, uniform, all")
		shape     = flag.Float64("weibull-shape", 0.7, "Weibull shape (with -arrival weibull)")
		scale     = flag.Float64("weibull-scale", 20, "Weibull scale (with -arrival weibull)")
		rigid     = flag.Float64("rigid", 0.5, "share of rigid jobs")
		moldable  = flag.Float64("moldable", 0, "share of moldable jobs")
		malleable = flag.Float64("malleable", 0.5, "share of malleable jobs")
		evolving  = flag.Float64("evolving", 0, "share of evolving jobs")
		bbTarget  = flag.Bool("bb-checkpoints", false, "direct checkpoints to burst buffers instead of the PFS")
		ckpt      = flag.String("checkpoint-interval", "", "checkpoint-interval expression in seconds tagged onto every job (e.g. \"300\"; empty = no restart checkpoints)")
		name      = flag.String("name", "synthetic", "workload name")
		stream    = flag.Bool("stream", false, "emit jobs incrementally in constant memory (same output; use for very large workloads)")
	)
	flag.Parse()

	shares := map[job.Type]float64{}
	for t, v := range map[job.Type]float64{
		job.Rigid: *rigid, job.Moldable: *moldable,
		job.Malleable: *malleable, job.Evolving: *evolving,
	} {
		if v > 0 {
			shares[t] = v
		}
	}
	target := job.TargetPFS
	if *bbTarget {
		target = job.TargetBB
	}
	cfg := elastisim.WorkloadConfig{
		Name:  *name,
		Seed:  *seed,
		Count: *count,
		Arrival: job.Arrival{
			Kind:  job.ArrivalKind(*arrival),
			Rate:  *rate,
			Shape: *shape,
			Scale: *scale,
		},
		Nodes:              [2]int{*minNodes, *maxNodes},
		MachineNodes:       *nodes,
		NodeSpeed:          *nodeSpeed,
		TypeShares:         shares,
		CheckpointTarget:   target,
		CheckpointInterval: *ckpt,
	}
	if *stream {
		return streamWorkload(cfg)
	}
	wl, err := elastisim.GenerateWorkload(cfg)
	if err != nil {
		return err
	}
	out, err := wl.MarshalJSON()
	if err != nil {
		return err
	}
	os.Stdout.Write(out)
	fmt.Println()
	counts := wl.CountByType()
	fmt.Fprintf(os.Stderr, "workgen: %d jobs (%v)\n", len(wl.Jobs), counts)
	return nil
}

// streamWorkload writes the workload job by job: memory stays flat no
// matter the count, and the bytes match the buffered path exactly.
func streamWorkload(cfg elastisim.WorkloadConfig) error {
	s, err := elastisim.NewWorkloadStream(cfg)
	if err != nil {
		return err
	}
	out := bufio.NewWriterSize(os.Stdout, 1<<20)
	ww := job.NewWorkloadWriter(out, cfg.Name)
	counts := map[job.Type]int{}
	n := 0
	for {
		j, err := s.Next()
		if err != nil {
			return err
		}
		if j == nil {
			break
		}
		if err := ww.WriteJob(j); err != nil {
			return err
		}
		counts[j.Type]++
		n++
	}
	if err := ww.Close(); err != nil {
		return err
	}
	fmt.Fprintln(out)
	if err := out.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "workgen: %d jobs (%v)\n", n, counts)
	return nil
}
