// Command elastisim runs one batch-system simulation from a platform and a
// workload description and reports batch metrics.
//
// Usage:
//
//	elastisim -platform cluster.json -workload jobs.json [-algorithm adaptive]
//	          [-interval 0] [-jobs-csv jobs.csv] [-util-csv util.csv]
//	          [-gantt gantt.json] [-trace] [-v]
//	elastisim -config combined.json [-result-json result.json]
//
// -config accepts the combined document elastisimd serves (platform,
// workload, algorithm, failures, and options in one JSON file);
// -result-json writes the canonical deterministic result document, which
// is byte-comparable with the daemon's /result artifact for the same
// config.
//
// Observability flags: -trace-out streams a Chrome trace_event JSON file
// (load it in Perfetto or chrome://tracing), -trace-jsonl a line-delimited
// variant, -audit-out the scheduler decision audit, -telemetry-out the
// self-profiling snapshot; -progress prints a live stderr ticker, and
// -cpuprofile/-memprofile write pprof profiles.
//
// The platform and workload JSON formats are documented in the README;
// `elastisim -print-formats` prints commented examples.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/elastisim"
	"repro/internal/cli"
	"repro/internal/extsched"
	"repro/internal/telemetry"
	"repro/internal/unit"
)

func main() { cli.Main("elastisim", run) }

func run(ctx context.Context) error {
	var (
		configPath   = flag.String("config", "", "combined config JSON (platform, workload, algorithm, options in one document); replaces -platform/-workload/-algorithm")
		platformPath = flag.String("platform", "", "platform JSON file (required unless -config)")
		workloadPath = flag.String("workload", "", "workload JSON file (required unless -config or -swf)")
		swfPath      = flag.String("swf", "", "SWF trace instead of a JSON workload")
		swfSpeed     = flag.Float64("swf-node-speed", 100e9, "node speed (flops/s) for SWF calibration")
		swfCores     = flag.Int("swf-cores-per-node", 1, "cores per node for SWF processor counts")
		swfMaxJobs   = flag.Int("swf-max-jobs", 0, "truncate the SWF trace (0 = all)")
		swfMalleable = flag.Float64("swf-malleable", 0, "fraction of SWF jobs converted to malleable")
		algoName     = flag.String("algorithm", "adaptive", "scheduling algorithm: "+strings.Join(elastisim.AlgorithmNames(), ", "))
		external     = flag.String("external", "", "run an external scheduler process (command line) speaking the JSON stdio protocol; overrides -algorithm")
		interval     = flag.Float64("interval", 0, "periodic scheduler invocation interval in seconds (0 = event-driven only)")
		periodicOnly = flag.Bool("periodic-only", false, "disable event-driven invocations (requires -interval)")
		resultJSON   = flag.String("result-json", "", "write the canonical result JSON document to this path")
		jobsCSV      = flag.String("jobs-csv", "", "write per-job results CSV to this path")
		utilCSV      = flag.String("util-csv", "", "write the busy-nodes timeline CSV to this path")
		ganttJSON    = flag.String("gantt", "", "write allocation segments JSON to this path")
		ganttSVG     = flag.String("gantt-svg", "", "write an SVG Gantt chart to this path")
		utilSVG      = flag.String("util-svg", "", "write an SVG utilization plot to this path")
		swfOut       = flag.String("swf-out", "", "export per-job results as an SWF trace to this path")
		swfOutCores  = flag.Int("swf-out-cores", 1, "cores per node for -swf-out processor counts")
		trace        = flag.Bool("trace", false, "print the engine event log")
		traceOut     = flag.String("trace-out", "", "write a Chrome trace_event JSON span trace to this path")
		traceJSONL   = flag.String("trace-jsonl", "", "write a JSONL span trace to this path")
		auditOut     = flag.String("audit-out", "", "write the scheduler decision audit (JSONL) to this path")
		telemetryOut = flag.String("telemetry-out", "", "write the self-profiling snapshot JSON to this path")
		progress     = flag.Bool("progress", false, "print a live progress ticker to stderr")
		cpuProfile   = flag.String("cpuprofile", "", "write a pprof CPU profile to this path")
		memProfile   = flag.String("memprofile", "", "write a pprof heap profile to this path")
		verbose      = flag.Bool("v", false, "print per-job results")
		printFormats = flag.Bool("print-formats", false, "print example platform and workload files and exit")
	)
	flag.Parse()

	if *printFormats {
		fmt.Print(formatExamples)
		return nil
	}
	if *configPath == "" && (*platformPath == "" || (*workloadPath == "" && *swfPath == "")) {
		flag.Usage()
		return cli.ErrUsage
	}

	var (
		spec     *elastisim.PlatformSpec
		wl       *elastisim.Workload
		algo     elastisim.Algorithm
		failures *elastisim.FailureSpec
		opts     elastisim.Options
		extProc  *extsched.Process
		err      error
	)
	if *configPath != "" {
		// A combined document — the same format elastisimd accepts —
		// carries platform, workload, algorithm, failures, and engine
		// options in one file. CLI observability flags still apply.
		data, rerr := os.ReadFile(*configPath)
		if rerr != nil {
			return rerr
		}
		cfg, perr := elastisim.ParseConfig(data)
		if perr != nil {
			return perr
		}
		spec, wl, algo, failures, opts = cfg.Platform, cfg.Workload, cfg.Algorithm, cfg.Failures, cfg.Options
		opts.Trace = opts.Trace || *trace
	} else {
		spec, err = elastisim.LoadPlatform(*platformPath)
		if err != nil {
			return err
		}
		if *swfPath != "" {
			wl, err = elastisim.LoadSWF(*swfPath, elastisim.SWFOptions{
				NodeSpeed:         *swfSpeed,
				CoresPerNode:      *swfCores,
				MaxJobs:           *swfMaxJobs,
				MaxNodes:          spec.TotalNodes(),
				MalleableFraction: *swfMalleable,
			})
		} else {
			wl, err = elastisim.LoadWorkload(*workloadPath, spec.TotalNodes())
		}
		if err != nil {
			return err
		}
		opts = elastisim.Options{
			InvocationInterval: *interval,
			DisableEventDriven: *periodicOnly,
			Trace:              *trace,
		}
	}
	if *external != "" {
		extProc, err = extsched.StartProcess(strings.Fields(*external))
		if err != nil {
			return err
		}
		algo = extProc
	} else if algo == nil {
		algo, err = elastisim.NewAlgorithm(*algoName)
		if err != nil {
			return err
		}
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	tracer, closeTel, err := setupTelemetry(*traceOut, *traceJSONL, *auditOut)
	if err != nil {
		return err
	}
	opts.Telemetry = tracer
	if *progress {
		opts.Progress = &telemetry.RunProgress{W: os.Stderr, Label: "sim"}
	}
	session, err := elastisim.NewSession(elastisim.Config{
		Platform:  spec,
		Workload:  wl,
		Algorithm: algo,
		Failures:  failures,
		Options:   opts,
	})
	if err != nil {
		closeTel()
		return err
	}
	res, err := session.Run(ctx)
	// On Ctrl-C the session returns the partial result alongside ctx.Err():
	// flush every requested artifact from it, then exit 130.
	var cancelErr error
	if err != nil && res != nil && errors.Is(err, ctx.Err()) {
		cancelErr = err
	}
	if cerr := closeTel(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil && cancelErr == nil {
		return err
	}
	if cancelErr != nil {
		p := session.Peek()
		fmt.Fprintf(os.Stderr, "elastisim: cancelled at sim time %.1f s after %d events (%d/%d jobs finished); writing partial results\n",
			p.Now, p.Events, p.Completed, p.Total)
	}
	if *telemetryOut != "" {
		if err := writeFile(*telemetryOut, res.Telemetry.WriteJSON); err != nil {
			return err
		}
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
		f.Close()
	}
	if extProc != nil {
		if cerr := extProc.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "warning: external scheduler:", cerr)
		}
	}

	s := res.Summary
	fmt.Printf("platform      %s (%d nodes)\n", spec.Name, spec.TotalNodes())
	fmt.Printf("workload      %s (%d jobs)\n", wl.Name, len(wl.Jobs))
	fmt.Printf("algorithm     %s\n", algo.Name())
	fmt.Printf("makespan      %.1f s (%s)\n", s.Makespan, unit.FormatSeconds(s.Makespan))
	fmt.Printf("utilization   %.1f%%\n", s.Utilization*100)
	fmt.Printf("completed     %d (killed %d)\n", s.Completed, s.Killed)
	if s.Killed > 0 {
		fmt.Printf("  walltime %d, by scheduler %d, node failure %d\n",
			s.KilledWalltime, s.KilledByScheduler, s.FailedNode)
	}
	if s.NodeFailures > 0 {
		fmt.Printf("failures      %d node failures, %d requeues\n", s.NodeFailures, s.Requeues)
		fmt.Printf("badput        %.1f node-s (goodput %.1f node-s)\n",
			s.BadputNodeSeconds, s.GoodputNodeSeconds)
		fmt.Printf("availability  %.2f%% (%.1f down node-s)\n", s.Availability*100, s.DownNodeSeconds)
	}
	fmt.Printf("mean wait     %.1f s   p95 %.1f s\n", s.MeanWait, s.P95Wait)
	fmt.Printf("mean turnaround %.1f s\n", s.MeanTurnaround)
	fmt.Printf("mean slowdown %.2f   max %.2f\n", s.MeanSlowdown, s.MaxSlowdown)
	fmt.Printf("reconfigs     %d\n", s.Reconfigs)
	fmt.Printf("sim events    %d in %v (%.0f events/s)\n",
		res.Events, res.WallClock, float64(res.Events)/res.WallClock.Seconds())

	if *verbose {
		fmt.Println()
		if err := res.Recorder.WriteJobsCSV(os.Stdout); err != nil {
			return err
		}
	}
	if *trace {
		fmt.Println()
		for _, ev := range res.Trace {
			fmt.Println(ev)
		}
	}
	for _, w := range res.Warnings {
		fmt.Fprintln(os.Stderr, "warning:", w)
	}
	if *resultJSON != "" {
		if err := writeFile(*resultJSON, res.WriteJSON); err != nil {
			return err
		}
	}
	if *jobsCSV != "" {
		if err := writeFile(*jobsCSV, res.Recorder.WriteJobsCSV); err != nil {
			return err
		}
	}
	if *utilCSV != "" {
		if err := writeFile(*utilCSV, func(w io.Writer) error {
			return res.Recorder.BusyTimeline().WriteCSV(w, "busy_nodes")
		}); err != nil {
			return err
		}
	}
	if *ganttJSON != "" {
		if err := writeFile(*ganttJSON, res.Recorder.WriteGanttJSON); err != nil {
			return err
		}
	}
	if *ganttSVG != "" {
		title := fmt.Sprintf("%s on %s (%s)", wl.Name, spec.Name, algo.Name())
		if err := writeFile(*ganttSVG, func(w io.Writer) error {
			return res.WriteGanttSVG(w, title)
		}); err != nil {
			return err
		}
	}
	if *utilSVG != "" {
		if err := writeFile(*utilSVG, func(w io.Writer) error {
			return res.WriteUtilizationSVG(w, "cluster utilization")
		}); err != nil {
			return err
		}
	}
	if *swfOut != "" {
		if err := writeFile(*swfOut, func(w io.Writer) error {
			return res.Recorder.WriteSWF(w, *swfOutCores)
		}); err != nil {
			return err
		}
	}
	return cancelErr
}

// setupTelemetry builds a tracer streaming to the requested artifact files.
// With all paths empty it returns a nil tracer (telemetry fully disabled)
// and a no-op closer.
func setupTelemetry(chromePath, jsonlPath, auditPath string) (*elastisim.Tracer, func() error, error) {
	if chromePath == "" && jsonlPath == "" && auditPath == "" {
		return nil, func() error { return nil }, nil
	}
	var sinks []elastisim.TelemetrySink
	var files []*os.File
	open := func(path string) (*os.File, error) {
		f, err := os.Create(path)
		if err != nil {
			for _, g := range files {
				g.Close()
			}
			return nil, err
		}
		files = append(files, f)
		return f, nil
	}
	if chromePath != "" {
		f, err := open(chromePath)
		if err != nil {
			return nil, nil, err
		}
		sinks = append(sinks, elastisim.NewChromeTraceSink(f))
	}
	if jsonlPath != "" {
		f, err := open(jsonlPath)
		if err != nil {
			return nil, nil, err
		}
		sinks = append(sinks, elastisim.NewJSONLTraceSink(f))
	}
	tracer := elastisim.NewTracer(sinks...)
	var audit *elastisim.AuditLog
	if auditPath != "" {
		f, err := open(auditPath)
		if err != nil {
			return nil, nil, err
		}
		audit = elastisim.NewAuditLog(f)
		tracer.SetAudit(audit)
	}
	closer := func() error {
		err := tracer.Close()
		if audit != nil {
			if cerr := audit.Close(); err == nil {
				err = cerr
			}
		}
		for _, f := range files {
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		return err
	}
	return tracer, closer, nil
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Both example documents below are valid files: paste them as-is.
// Comment lines start with '#'; everything between the markers is JSON.
const examplePlatform = `{
  "name": "cluster",
  "nodes": [{"count": 128, "speed": "100G"}],
  "network": {
    "topology": "star",
    "link_bandwidth": "10G",
    "latency": 1e-6
  },
  "pfs": {"read_bandwidth": "80G", "write_bandwidth": "60G"},
  "burst_buffer": {
    "kind": "node_local",
    "read_bandwidth": "4G",
    "write_bandwidth": "4G"
  },
  "failures": {
    "model": "weibull",
    "seed": 7,
    "mtbf": "100k",
    "mttr": 600,
    "recovery": "shrink"
  }
}
`

const exampleWorkload = `{
  "name": "demo",
  "jobs": [{
    "name": "sim0",
    "type": "malleable",
    "submit_time": 0,
    "num_nodes_min": 4,
    "num_nodes_max": 32,
    "walltime": 7200,
    "args": {"flops": "50T", "io": "8G"},
    "reconfig_cost": "0.5 + io/(num_nodes_new*10G)",
    "phases": [
      {"name": "load", "tasks": [{"type": "read", "target": "pfs", "bytes": "io"}]},
      {"name": "solve", "iterations": 50, "scheduling_point": true, "tasks": [
        {"type": "compute", "flops": "flops/50 * (0.02 + 0.98/num_nodes)"},
        {"type": "comm", "pattern": "allreduce", "bytes": "64M"}
      ]},
      {"name": "store", "tasks": [{"type": "write", "target": "pfs", "bytes": "io"}]}
    ]
  }]
}
`

const formatExamples = `# Platform file (JSON). Quantities accept constant expressions
# ("100G" = 1e11). Topology "star" or "backbone" (+ backbone_bandwidth);
# burst_buffer is optional ("node_local" or "shared"). failures is
# optional: model "exponential" | "weibull" (+ mtbf, mttr, shape) or
# "trace" (+ outages: [{"node": 0, "down": 100, "up": 700}, ...]);
# recovery "shrink" (default) | "requeue" | "kill".
` + examplePlatform + `
# Workload file (JSON). Job types: rigid | moldable | malleable | evolving.
# Cost models are numbers, expressions, or vectors ({"4": 1e12, "8": 6e11});
# expression variables: num_nodes, total_nodes, iteration, iterations,
# phase, walltime, plus the job's own args. Dependencies reference jobs by
# name: "dependencies": ["sim0"]. An optional "checkpoint_interval"
# expression (seconds) enables checkpoint/restart under node failures.
` + exampleWorkload
