package main

import (
	"testing"

	"repro/elastisim"
	"repro/internal/job"
	"repro/internal/platform"
)

// The documents -print-formats shows must actually load and simulate: an
// example that drifts out of sync with the formats is worse than none.
func TestPrintedExamplesAreValid(t *testing.T) {
	spec, err := platform.ParseSpec([]byte(examplePlatform))
	if err != nil {
		t.Fatalf("example platform invalid: %v", err)
	}
	wl, err := job.ParseWorkload([]byte(exampleWorkload), spec.TotalNodes())
	if err != nil {
		t.Fatalf("example workload invalid: %v", err)
	}
	res, err := elastisim.Run(elastisim.Config{
		Platform:  spec,
		Workload:  wl,
		Algorithm: elastisim.NewAdaptive(),
	})
	if err != nil {
		t.Fatalf("example simulation failed: %v", err)
	}
	if res.Summary.Completed != 1 {
		t.Errorf("example job did not complete: %+v", res.Summary)
	}
}
