// Command tracecheck validates a Chrome trace_event JSON file written by
// `elastisim -trace-out`: it must parse, every event needs a name, a known
// phase, and a track, timestamps must be non-decreasing per track, and
// every B (span begin) needs a matching E. It prints per-track span counts
// and exits non-zero on any violation, so CI can gate on trace validity.
//
// Usage:
//
//	tracecheck trace.json
//	tracecheck -q trace.json   # errors only
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/telemetry"
)

func main() { cli.Main("tracecheck", run) }

func run(ctx context.Context) error {
	quiet := flag.Bool("q", false, "suppress the per-track summary, report errors only")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-q] trace.json")
		return cli.ErrUsage
	}
	path := flag.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	stats, err := telemetry.ValidateChromeTrace(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	open := 0
	for _, k := range stats.SortedTrackKeys() {
		b := stats.Tracks[k]
		open += b.OpenSpans
		if !*quiet {
			fmt.Printf("pid %d tid %-5d  %6d events  %5d spans  [%.3f, %.3f] µs\n",
				k.Pid, k.Tid, b.Events, b.Spans, b.FirstTS, b.LastTS)
		}
	}
	if open > 0 {
		return fmt.Errorf("%s: %d span(s) left open (B without E)", path, open)
	}
	if !*quiet {
		fmt.Printf("ok: %d events on %d tracks\n", stats.Events, len(stats.Tracks))
	}
	return nil
}
