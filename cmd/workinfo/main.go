// Command workinfo summarizes a workload file: job counts by type and
// user, allocation histogram, arrival intensity, and adaptivity features.
//
// Usage:
//
//	workinfo -workload jobs.json [-machine-nodes 1024]
//	workinfo -swf trace.swf -swf-node-speed 100e9
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/elastisim"
)

func main() {
	var (
		workloadPath = flag.String("workload", "", "workload JSON file")
		swfPath      = flag.String("swf", "", "SWF trace instead of JSON")
		swfSpeed     = flag.Float64("swf-node-speed", 100e9, "node speed for SWF calibration")
		swfCores     = flag.Int("swf-cores-per-node", 1, "cores per node for SWF")
		nodes        = flag.Int("machine-nodes", 1<<20, "machine size used for validation")
	)
	flag.Parse()
	if *workloadPath == "" && *swfPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	var (
		wl  *elastisim.Workload
		err error
	)
	if *swfPath != "" {
		wl, err = elastisim.LoadSWF(*swfPath, elastisim.SWFOptions{
			NodeSpeed:    *swfSpeed,
			CoresPerNode: *swfCores,
		})
	} else {
		wl, err = elastisim.LoadWorkload(*workloadPath, *nodes)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "workinfo:", err)
		os.Exit(1)
	}
	stats := wl.Stats()
	stats.Fprint(os.Stdout, wl.Name)
}
