// Command workinfo summarizes a workload file: job counts by type and
// user, allocation histogram, arrival intensity, and adaptivity features.
// With -trace it instead summarizes a JSONL span trace written by
// `elastisim -trace-jsonl`: per-job wait/run/reconfigure time and task,
// scheduling-point, and checkpoint counts.
//
// Usage:
//
//	workinfo -workload jobs.json [-machine-nodes 1024]
//	workinfo -swf trace.swf -swf-node-speed 100e9
//	workinfo -trace run.jsonl
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/elastisim"
	"repro/internal/cli"
	"repro/internal/telemetry"
)

func main() { cli.Main("workinfo", run) }

func run(ctx context.Context) error {
	var (
		workloadPath = flag.String("workload", "", "workload JSON file")
		swfPath      = flag.String("swf", "", "SWF trace instead of JSON")
		swfSpeed     = flag.Float64("swf-node-speed", 100e9, "node speed for SWF calibration")
		swfCores     = flag.Int("swf-cores-per-node", 1, "cores per node for SWF")
		nodes        = flag.Int("machine-nodes", 1<<20, "machine size used for validation")
		tracePath    = flag.String("trace", "", "JSONL span trace (from elastisim -trace-jsonl) to summarize per job")
	)
	flag.Parse()
	if *tracePath != "" {
		return summarizeTrace(*tracePath)
	}
	if *workloadPath == "" && *swfPath == "" {
		flag.Usage()
		return cli.ErrUsage
	}
	var (
		wl  *elastisim.Workload
		err error
	)
	if *swfPath != "" {
		wl, err = elastisim.LoadSWF(*swfPath, elastisim.SWFOptions{
			NodeSpeed:    *swfSpeed,
			CoresPerNode: *swfCores,
		})
	} else {
		wl, err = elastisim.LoadWorkload(*workloadPath, *nodes)
	}
	if err != nil {
		return err
	}
	stats := wl.Stats()
	stats.Fprint(os.Stdout, wl.Name)
	return nil
}

// summarizeTrace prints per-job wait/run/reconfigure totals from a JSONL
// span trace.
func summarizeTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := telemetry.ReadJSONL(f)
	if err != nil {
		return err
	}
	sums := telemetry.SummarizeJobSpans(events)
	if len(sums) == 0 {
		return fmt.Errorf("%s: no job tracks found", path)
	}
	fmt.Printf("%-6s %12s %12s %12s %7s %7s %7s %7s\n",
		"job", "wait[s]", "run[s]", "reconf[s]", "tasks", "sched", "reconf", "ckpt")
	var totalWait, totalRun, totalReconf float64
	for _, s := range sums {
		fmt.Printf("%-6d %12.1f %12.1f %12.1f %7d %7d %7d %7d\n",
			s.Job, s.Wait, s.Run, s.Reconfigure, s.Tasks, s.SchedPoints, s.Reconfigs, s.Checkpoints)
		totalWait += s.Wait
		totalRun += s.Run
		totalReconf += s.Reconfigure
	}
	fmt.Printf("%-6s %12.1f %12.1f %12.1f   (%d jobs)\n",
		"total", totalWait, totalRun, totalReconf, len(sums))
	return nil
}
