package main

import "repro/elastisim"

// applyQueueMode selects the debug binary-heap event queue when requested.
func applyQueueMode(opts *elastisim.Options, heap bool) {
	opts.ForceHeapQueue = heap
}
