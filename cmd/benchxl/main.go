// Command benchxl measures end-to-end simulator throughput at extreme
// scale: a 10k-node cluster working through up to a million small jobs.
// It is the harness behind the BENCH_3.json scaling curve, so the
// workload construction is deliberately self-contained and deterministic
// — the same binary built from two revisions produces the identical
// workload and can be compared wall-clock to wall-clock.
//
// The scheduler runs in periodic-only mode (event-driven invocations
// disabled): at a million jobs the interesting cost is the kernel and
// the per-job bookkeeping, not the O(pending) scheduler snapshots that
// per-completion invocations would force. The interval is configurable
// so both regimes can be measured.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/elastisim"
	"repro/internal/job"
)

func main() {
	nodes := flag.Int("nodes", 10000, "cluster size")
	jobs := flag.Int("jobs", 1000000, "number of jobs")
	interval := flag.Float64("interval", 30, "periodic scheduler invocation interval (seconds)")
	eventDriven := flag.Bool("event-driven", false, "also invoke the scheduler on job events (slower at scale)")
	algo := flag.String("algo", "firstfit", "scheduling algorithm")
	seed := flag.Int64("seed", 1, "workload seed")
	rate := flag.Float64("rate", 7, "mean job arrival rate (jobs per simulated second)")
	heap := flag.Bool("heap", false, "force the binary-heap event queue (debug reference path)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the simulation to this file")
	flag.Parse()

	alg, err := elastisim.NewAlgorithm(*algo)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	genStart := time.Now()
	w := buildWorkload(*jobs, *nodes, *rate, *seed)
	genWall := time.Since(genStart)

	cfg := elastisim.Config{
		Platform:  elastisim.HomogeneousPlatform("xl", *nodes, 1e12, 1e10, 1e11, 1e11),
		Workload:  w,
		Algorithm: alg,
		Options: elastisim.Options{
			InvocationInterval: *interval,
			DisableEventDriven: !*eventDriven,
		},
	}
	applyQueueMode(&cfg.Options, *heap)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		pprof.StartCPUProfile(f)
		defer pprof.StopCPUProfile()
	}
	var ms runtime.MemStats
	res, err := elastisim.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	runtime.ReadMemStats(&ms)
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}

	fmt.Printf("jobs=%d nodes=%d algo=%s interval=%gs event_driven=%v heap=%v\n",
		*jobs, *nodes, *algo, *interval, *eventDriven, *heap)
	fmt.Printf("generate_wall=%.3fs\n", genWall.Seconds())
	fmt.Printf("sim_wall=%.3fs\n", res.WallClock.Seconds())
	fmt.Printf("events=%d invocations=%d decisions=%d\n", res.Events, res.Invocations, res.Decisions)
	fmt.Printf("events_per_sec=%.0f jobs_per_sec=%.0f\n",
		float64(res.Events)/res.WallClock.Seconds(),
		float64(*jobs)/res.WallClock.Seconds())
	fmt.Printf("makespan=%.0fs completed=%d peak_heap_mb=%.0f\n",
		res.Summary.Makespan, len(res.Records), float64(ms.HeapSys)/(1<<20))
}

// buildWorkload synthesizes small, mostly-rigid jobs with a shared set of
// application templates. Sharing the templates matters twice over: parsing
// a model expression per job would dominate generation at 1M jobs, and the
// engine treats applications as immutable so the sharing is free.
func buildWorkload(n, totalNodes int, rate float64, seed int64) *elastisim.Workload {
	apps := appTemplates()
	rng := splitmix(uint64(seed))
	js := make([]*job.Job, 0, n)
	now := 0.0
	for i := 0; i < n; i++ {
		// Exponential inter-arrival at the requested mean rate.
		now += -math.Log(1-rng.f64()) / rate
		iters := 1 + int(rng.next()%3)
		nodesWanted := 1 << (rng.next() % 3) // 1, 2, or 4 nodes
		if nodesWanted > totalNodes {
			nodesWanted = totalNodes
		}
		// Target runtime 100–900 s on the assigned nodes; the model burns
		// per-node flops, so scale by node count and iterations.
		target := 100 + 800*rng.f64()
		flops := target / float64(iters) * 1e12
		j := &job.Job{
			ID:         job.ID(i),
			Type:       job.Rigid,
			SubmitTime: now,
			NumNodes:   nodesWanted,
			Args:       map[string]float64{"flops": flops},
			App:        apps[iters-1],
		}
		js = append(js, j)
	}
	w := &elastisim.Workload{Jobs: js}
	w.Sort()
	return w
}

// appTemplates returns one shared application per iteration count (1..3):
// a single compute phase whose per-node flop count comes from the job's
// "flops" argument.
func appTemplates() [3]*job.Application {
	var apps [3]*job.Application
	for iters := 1; iters <= 3; iters++ {
		apps[iters-1] = &job.Application{Phases: []job.Phase{{
			Name:       "main",
			Iterations: iters,
			Tasks: []job.Task{{
				Kind:  job.TaskCompute,
				Name:  "compute",
				Model: job.MustExprModel("flops"),
			}},
		}}}
	}
	return apps
}

// splitmix64: tiny deterministic RNG so the workload is identical across
// revisions regardless of math/rand changes.
type splitmix uint64

func (s *splitmix) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmix) f64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}
