// Command obscheck machine-validates a Prometheus text exposition
// (version 0.0.4) such as a `curl /metrics` capture: metric and label
// syntax, TYPE declarations, duplicate series, and histogram sample
// consistency. With -require it additionally demands that specific
// metric families are present, so CI can pin that a scrape of a live
// elastisimd actually carries the job-queue, HTTP, and kernel series.
//
// Usage:
//
//	curl -s http://127.0.0.1:9178/metrics | obscheck
//	obscheck -require elastisimd_jobs,elastisim_sim_events_total metrics.txt
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/obs"
)

func main() { cli.Main("obscheck", run) }

func run(ctx context.Context) error {
	var (
		require = flag.String("require", "", "comma-separated metric families that must be present")
		quiet   = flag.Bool("q", false, "suppress the family summary, report errors only")
	)
	flag.Parse()
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: obscheck [-q] [-require fam1,fam2] [metrics.txt]")
		return cli.ErrUsage
	}

	var in io.Reader = os.Stdin
	name := "<stdin>"
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in, name = f, flag.Arg(0)
	}

	stats, err := obs.ValidateExposition(in)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}

	var missing []string
	for _, fam := range strings.Split(*require, ",") {
		if fam = strings.TrimSpace(fam); fam != "" && !stats.HasFamily(fam) {
			missing = append(missing, fam)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("%s: required families missing: %s (present: %s)",
			name, strings.Join(missing, ", "), strings.Join(stats.SortedFamilies(), ", "))
	}
	if !*quiet {
		for _, fam := range stats.SortedFamilies() {
			fmt.Printf("%-50s %s\n", fam, stats.Families[fam])
		}
		fmt.Printf("ok: %d series in %d families\n", stats.Series, len(stats.Families))
	}
	return nil
}
