// Command benchguard compares `go test -bench` output against the
// committed reference numbers in a BENCH_*.json report and fails on
// gross regressions. It is CI's perf tripwire: the margin is deliberately
// wide (hosts differ), so only order-of-magnitude mistakes — an
// accidental O(n) scan on the event path, a reintroduced per-event
// allocation — trip it, not scheduler noise.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./internal/des/ | benchguard -ref BENCH_3.json
//
// Benchmark names are keyed as "<package-basename>/<BenchmarkName>"
// (GOMAXPROCS suffix stripped) and matched against the reference file's
// "microbenchmarks" section; the "after" numbers are the reference.
// ns/op may exceed the reference by at most -margin (wall-clock check,
// host-dependent). allocs/op may exceed it by at most one (allocation
// counts are host-independent, so the zero-allocation guarantees on the
// kernel hot paths are pinned tightly).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/cli"
)

func main() { cli.Main("benchguard", run) }

type refMetrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type refBench struct {
	Note  string     `json:"note"`
	After refMetrics `json:"after"`
}

type refFile struct {
	Microbenchmarks map[string]refBench `json:"microbenchmarks"`
}

type measurement struct {
	name   string // "des/BenchmarkScheduleFire"
	nsOp   float64
	bytes  float64
	allocs float64
	hasMem bool
}

func run(_ context.Context) error {
	var (
		refPath = flag.String("ref", "BENCH_3.json", "reference report (BENCH_*.json)")
		input   = flag.String("input", "-", "benchmark output to check (- = stdin)")
		margin  = flag.Float64("margin", 4.0, "allowed ns/op slowdown factor vs the reference")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		return cli.ErrUsage
	}

	raw, err := os.ReadFile(*refPath)
	if err != nil {
		return err
	}
	var ref refFile
	if err := json.Unmarshal(raw, &ref); err != nil {
		return fmt.Errorf("parsing %s: %w", *refPath, err)
	}
	if len(ref.Microbenchmarks) == 0 {
		return fmt.Errorf("%s has no microbenchmarks section", *refPath)
	}

	var in io.Reader = os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	measured, err := parseBenchOutput(in)
	if err != nil {
		return err
	}

	matched, failures := 0, 0
	for _, m := range measured {
		rb, ok := ref.Microbenchmarks[m.name]
		if !ok {
			continue
		}
		matched++
		limit := rb.After.NsPerOp * *margin
		status := "ok"
		if m.nsOp > limit {
			status = fmt.Sprintf("FAIL: %.4g ns/op exceeds %.4g (ref %.4g x margin %g)",
				m.nsOp, limit, rb.After.NsPerOp, *margin)
			failures++
		} else if m.hasMem && m.allocs > rb.After.AllocsPerOp+1 {
			status = fmt.Sprintf("FAIL: %g allocs/op exceeds reference %g (+1 tolerance)",
				m.allocs, rb.After.AllocsPerOp)
			failures++
		} else if m.hasMem && m.bytes > rb.After.BytesPerOp+64 {
			// Bytes per op are host-independent like allocs; the small
			// absolute tolerance absorbs amortized growth rounding without
			// letting a reintroduced per-op allocation (48+ bytes) through.
			status = fmt.Sprintf("FAIL: %g B/op exceeds reference %g (+64 tolerance)",
				m.bytes, rb.After.BytesPerOp)
			failures++
		}
		fmt.Printf("benchguard: %-40s %10.4g ns/op (ref %.4g)  %s\n",
			m.name, m.nsOp, rb.After.NsPerOp, status)
	}
	if matched == 0 {
		return fmt.Errorf("no benchmark in the input matched %s — harness and reference have drifted apart", *refPath)
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d reference benchmarks regressed beyond the %gx margin", failures, matched, *margin)
	}
	fmt.Printf("benchguard: %d reference benchmarks within margin\n", matched)
	return nil
}

// parseBenchOutput extracts benchmark result lines from `go test -bench`
// output, tracking the current package from "pkg:" headers so names can
// be qualified the way the reference file keys them.
func parseBenchOutput(f io.Reader) ([]measurement, error) {
	var out []measurement
	pkg := ""
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			full := strings.TrimSpace(rest)
			pkg = full[strings.LastIndex(full, "/")+1:]
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Benchmark result shape: Name-N  iters  X ns/op [Y B/op  Z allocs/op]
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		nsOp, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("parsing ns/op in %q: %w", line, err)
		}
		m := measurement{name: pkg + "/" + name, nsOp: nsOp}
		for i := 4; i+1 < len(fields); i += 2 {
			switch fields[i+1] {
			case "allocs/op":
				if v, err := strconv.ParseFloat(fields[i], 64); err == nil {
					m.allocs = v
					m.hasMem = true
				}
			case "B/op":
				if v, err := strconv.ParseFloat(fields[i], 64); err == nil {
					m.bytes = v
				}
			}
		}
		out = append(out, m)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
