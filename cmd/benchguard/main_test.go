package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro/internal/des
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkScheduleCancel 	48640834	        49.15 ns/op	      53 B/op	       0 allocs/op
BenchmarkScheduleFire-4 	88815018	        26.95 ns/op	       0 B/op	       0 allocs/op
BenchmarkBacklogFire    	15966444	       150.4 ns/op	       3 B/op	       0 allocs/op
PASS
ok  	repro/internal/des	10.531s
pkg: repro/internal/fluid
BenchmarkSolveDisjoint-16 	 6924441	       345.1 ns/op	     176 B/op	       3 allocs/op
PASS
`

func TestParseBenchOutput(t *testing.T) {
	got, err := parseBenchOutput(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := []measurement{
		{name: "des/BenchmarkScheduleCancel", nsOp: 49.15, bytes: 53, allocs: 0, hasMem: true},
		{name: "des/BenchmarkScheduleFire", nsOp: 26.95, bytes: 0, allocs: 0, hasMem: true},
		{name: "des/BenchmarkBacklogFire", nsOp: 150.4, bytes: 3, allocs: 0, hasMem: true},
		{name: "fluid/BenchmarkSolveDisjoint", nsOp: 345.1, bytes: 176, allocs: 3, hasMem: true},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d measurements, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("measurement %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestParseBenchOutputNoMem(t *testing.T) {
	got, err := parseBenchOutput(strings.NewReader(
		"pkg: repro/internal/des\nBenchmarkScheduleFire-2 \t100\t 31.00 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].hasMem || got[0].nsOp != 31.00 {
		t.Fatalf("got %+v", got)
	}
}
