// Burst-buffer offloading: an I/O-heavy checkpointing workload writes its
// checkpoints either to the shared parallel file system (contended) or to
// node-local burst buffers (contention-free), reproducing experiment E4 at
// example scale.
//
// Run with: go run ./examples/burstbuffer
package main

import (
	"fmt"
	"log"

	"repro/elastisim"
	"repro/internal/job"
	"repro/internal/platform"
)

func main() {
	spec := elastisim.HomogeneousPlatform("cluster", 128, 100e9, 10e9, 80e9, 60e9)
	spec.BurstBuffer = &platform.BurstBufferSpec{
		Kind:           platform.BBNodeLocal,
		ReadBandwidth:  4e9,
		WriteBandwidth: 4e9,
	}

	checkpointProfile := []job.Profile{{
		Name: "ckpt", Weight: 1, Kind: job.ProfileIOBound,
		Iterations:     [2]int{5, 15},
		ComputeSecs:    [2]float64{20, 60},
		IOBytes:        [2]float64{64e9, 256e9},
		SerialFraction: [2]float64{0.01, 0.05},
	}}

	run := func(target job.IOTarget) elastisim.Summary {
		workload, err := elastisim.GenerateWorkload(elastisim.WorkloadConfig{
			Name:             "ckpt-" + string(target),
			Seed:             7,
			Count:            50,
			Arrival:          job.Arrival{Kind: job.ArrivalPoisson, Rate: 1.0 / 25},
			Nodes:            [2]int{2, 32},
			MachineNodes:     128,
			NodeSpeed:        100e9,
			Profiles:         checkpointProfile,
			CheckpointTarget: target,
		})
		if err != nil {
			log.Fatal(err)
		}
		result, err := elastisim.Run(elastisim.Config{
			Platform:  spec,
			Workload:  workload,
			Algorithm: elastisim.NewEASY(),
		})
		if err != nil {
			log.Fatal(err)
		}
		return result.Summary
	}

	pfs := run(job.TargetPFS)
	bb := run(job.TargetBB)

	fmt.Println("checkpoint target  makespan    mean_turnaround  utilization")
	fmt.Println("-----------------  ----------  ---------------  -----------")
	fmt.Printf("%-17s  %9.1fs  %14.1fs  %10.1f%%\n", "pfs (shared)", pfs.Makespan, pfs.MeanTurnaround, pfs.Utilization*100)
	fmt.Printf("%-17s  %9.1fs  %14.1fs  %10.1f%%\n", "burst buffer", bb.Makespan, bb.MeanTurnaround, bb.Utilization*100)
	fmt.Printf("\nmakespan improvement: %.1f%%\n", 100*(pfs.Makespan-bb.Makespan)/pfs.Makespan)
	fmt.Println("Node-local burst buffers absorb checkpoint bursts that would")
	fmt.Println("otherwise contend on the PFS write path.")
}
