// Custom scheduling algorithm: shows how to plug user code into the
// simulator. The example implements "WidestFirst", a policy that starts
// the widest fitting pending job first (maximizing immediate utilization)
// and greedily expands malleable jobs, then compares it against the
// built-in algorithms on the same workload.
//
// Run with: go run ./examples/customsched
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/elastisim"
	"repro/internal/job"
	"repro/internal/sched"
)

// WidestFirst starts pending jobs widest-first and expands any malleable
// job at a scheduling point to its maximum if nodes are free. It
// demonstrates the Algorithm interface; it is deliberately simple (no
// reservations), so narrow jobs can starve under sustained wide load.
type WidestFirst struct{}

// Name implements elastisim.Algorithm.
func (WidestFirst) Name() string { return "widest-first" }

// Schedule implements elastisim.Algorithm.
func (WidestFirst) Schedule(inv *elastisim.Invocation) []elastisim.Decision {
	free := inv.FreeNodes
	var out []elastisim.Decision

	// Widest fitting jobs first; ties by submission order.
	pending := make([]*elastisim.JobView, len(inv.Pending))
	copy(pending, inv.Pending)
	sort.SliceStable(pending, func(i, j int) bool {
		return pending[i].Job.MinNodes() > pending[j].Job.MinNodes()
	})
	for _, v := range pending {
		n := sched.StartSize(v, free, sched.SizeRequested)
		if n == 0 {
			continue // unlike FCFS, keep trying narrower jobs
		}
		out = append(out, sched.Start(v.ID, n))
		free -= n
	}

	// Greedy expansion of whoever is at a scheduling point, in running
	// order.
	for _, v := range inv.Running {
		if free == 0 {
			break
		}
		if v.Job.Type != job.Malleable || !v.AtSchedulingPoint {
			continue
		}
		target := v.Nodes + free
		if maxN := v.Job.MaxNodes(); target > maxN {
			target = maxN
		}
		if target > v.Nodes {
			out = append(out, sched.Resize(v.ID, target))
			free -= target - v.Nodes
		}
	}
	return out
}

func main() {
	platform := elastisim.HomogeneousPlatform("cluster", 128, 100e9, 10e9, 80e9, 60e9)
	gen := func() *elastisim.Workload {
		w, err := elastisim.GenerateWorkload(elastisim.WorkloadConfig{
			Name: "mix", Seed: 9, Count: 120,
			Arrival:      job.Arrival{Kind: job.ArrivalPoisson, Rate: 1.0 / 18},
			Nodes:        [2]int{2, 64},
			MachineNodes: 128,
			NodeSpeed:    100e9,
			TypeShares:   map[job.Type]float64{job.Rigid: 0.5, job.Malleable: 0.5},
		})
		if err != nil {
			log.Fatal(err)
		}
		return w
	}

	algos := []elastisim.Algorithm{
		elastisim.NewFCFS(),
		elastisim.NewEASY(),
		elastisim.NewAdaptive(),
		WidestFirst{},
	}
	fmt.Println("algorithm     makespan    mean_wait  p95_wait   utilization")
	fmt.Println("------------  ----------  ---------  ---------  -----------")
	for _, algo := range algos {
		result, err := elastisim.Run(elastisim.Config{
			Platform:  platform,
			Workload:  gen(),
			Algorithm: algo,
		})
		if err != nil {
			log.Fatal(err)
		}
		s := result.Summary
		fmt.Printf("%-12s  %9.1fs  %8.1fs  %8.1fs  %10.1f%%\n",
			algo.Name(), s.Makespan, s.MeanWait, s.P95Wait, s.Utilization*100)
	}
	fmt.Println("\nWidestFirst packs the machine aggressively but, without EASY's")
	fmt.Println("reservations, lets wide jobs starve narrow ones on wait time.")
}
