// Malleable-vs-rigid comparison: the same synthetic workload is simulated
// with increasing shares of malleable jobs under the adaptive policy,
// reproducing the headline experiment of the paper (E2) at example scale.
//
// Run with: go run ./examples/malleable
package main

import (
	"fmt"
	"log"

	"repro/elastisim"
	"repro/internal/job"
)

func main() {
	platform := elastisim.HomogeneousPlatform("cluster", 128, 100e9, 10e9, 80e9, 60e9)

	fmt.Println("share  makespan    mean_wait  utilization  reconfigs")
	fmt.Println("-----  ----------  ---------  -----------  ---------")
	for _, share := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		shares := map[job.Type]float64{}
		if share < 1 {
			shares[job.Rigid] = 1 - share
		}
		if share > 0 {
			shares[job.Malleable] = share
		}
		workload, err := elastisim.GenerateWorkload(elastisim.WorkloadConfig{
			Name:         fmt.Sprintf("mix-%.0f", share*100),
			Seed:         42,
			Count:        120,
			Arrival:      job.Arrival{Kind: job.ArrivalPoisson, Rate: 1.0 / 18},
			Nodes:        [2]int{2, 64},
			MachineNodes: 128,
			NodeSpeed:    100e9,
			TypeShares:   shares,
		})
		if err != nil {
			log.Fatal(err)
		}
		result, err := elastisim.Run(elastisim.Config{
			Platform:  platform,
			Workload:  workload,
			Algorithm: elastisim.NewAdaptive(),
		})
		if err != nil {
			log.Fatal(err)
		}
		s := result.Summary
		fmt.Printf("%4.0f%%  %9.1fs  %8.1fs  %10.1f%%  %9d\n",
			share*100, s.Makespan, s.MeanWait, s.Utilization*100, s.Reconfigs)
	}
	fmt.Println("\nMalleability lets the scheduler fill idle nodes (expand) and")
	fmt.Println("admit queued jobs sooner (shrink), cutting makespan and wait.")
}
