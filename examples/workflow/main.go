// Workflow example: a preprocessing -> (4x parallel sweep) -> reduce
// pipeline expressed with job dependencies, run on a tapered tree
// topology with locality-packed placement. Demonstrates:
//
//   - "dependencies": jobs held until their predecessors finish;
//   - tree topologies where cross-switch collectives cost extra;
//   - the packed placement wrapper keeping jobs inside leaf switches.
//
// Run with: go run ./examples/workflow
package main

import (
	"fmt"
	"log"

	"repro/elastisim"
	"repro/internal/job"
	"repro/internal/platform"
)

func computePhase(flopsExpr string, comm string) []elastisim.Phase {
	return []elastisim.Phase{{
		Name:       "work",
		Iterations: 10,
		Tasks: []elastisim.Task{
			{Kind: job.TaskCompute, Model: job.MustExprModel(flopsExpr)},
			{Kind: job.TaskComm, Model: job.MustExprModel(comm), Pattern: job.PatternAllToAll},
		},
	}}
}

func main() {
	// 32 nodes in groups of 8 with a 1:4 tapered uplink.
	spec := elastisim.HomogeneousPlatform("cluster", 32, 100e9, 10e9, 40e9, 40e9)
	spec.Network.Topology = platform.TopologyTree
	spec.Network.GroupSize = 8
	spec.Network.UplinkBandwidth = 20e9

	// Stage 1: preprocess the input (wide I/O + compute).
	prep := &elastisim.Job{
		Name: "prep", Type: elastisim.Rigid, NumNodes: 8,
		Args: map[string]float64{"io": 64e9},
		App: &elastisim.Application{Phases: []elastisim.Phase{
			{Name: "load", Tasks: []elastisim.Task{
				{Kind: job.TaskRead, Model: job.MustExprModel("io"), Target: job.TargetPFS},
			}},
			{Name: "clean", Tasks: []elastisim.Task{
				{Kind: job.TaskCompute, Model: job.MustExprModel("2T / num_nodes")},
				{Kind: job.TaskWrite, Model: job.MustExprModel("io"), Target: job.TargetPFS},
			}},
		}},
	}

	// Stage 2: four parameter-sweep members, each gated on prep.
	jobs := []*elastisim.Job{prep}
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("sweep%d", i)
		jobs = append(jobs, &elastisim.Job{
			Name: name, Type: elastisim.Rigid, NumNodes: 8,
			Dependencies: []job.ID{0}, // prep
			App: &elastisim.Application{
				Phases: computePhase("8T / num_nodes", "256M"),
			},
		})
	}

	// Stage 3: reduce, gated on every sweep member.
	reduce := &elastisim.Job{
		Name: "reduce", Type: elastisim.Rigid, NumNodes: 16,
		Dependencies: []job.ID{1, 2, 3, 4},
		Args:         map[string]float64{"io": 16e9},
		App: &elastisim.Application{Phases: []elastisim.Phase{
			{Name: "combine", Tasks: []elastisim.Task{
				{Kind: job.TaskComm, Model: job.MustExprModel("2G"), Pattern: job.PatternGather},
				{Kind: job.TaskCompute, Model: job.MustExprModel("1T / num_nodes")},
				{Kind: job.TaskWrite, Model: job.MustExprModel("io"), Target: job.TargetPFS},
			}},
		}},
	}
	jobs = append(jobs, reduce)

	for i, j := range jobs {
		j.ID = job.ID(i)
	}
	workload := &elastisim.Workload{Name: "pipeline", Jobs: jobs}
	workload.Sort()

	result, err := elastisim.Run(elastisim.Config{
		Platform:  spec,
		Workload:  workload,
		Algorithm: elastisim.NewPacked(), // locality-aware EASY
		Options:   elastisim.Options{Trace: true},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("pipeline makespan %.1f s, utilization %.1f%%\n\n",
		result.Summary.Makespan, result.Summary.Utilization*100)
	fmt.Println("job      submit   start     end      (held until dependencies finished)")
	for _, r := range result.Records {
		fmt.Printf("%-8s %7.1f  %7.1f  %7.1f\n", r.Name, r.Submit, r.Start, r.End)
	}
	fmt.Println("\nevent log (held/released entries show the dependency gating):")
	for _, ev := range result.Trace {
		if ev.Kind == "held" || ev.Kind == "released" || ev.Kind == "start" || ev.Kind == "finish" {
			fmt.Println(" ", ev)
		}
	}
}
