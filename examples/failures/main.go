// Fault injection and resilience: the same mixed workload is simulated on
// an unreliable machine (Weibull node failures, ten-minute repairs) under
// the three recovery policies — shrink-through-failure, kill-and-requeue
// from the last checkpoint, and plain kill — plus a failure-free baseline.
//
// Run with: go run ./examples/failures
package main

import (
	"fmt"
	"log"

	"repro/elastisim"
	"repro/internal/job"
)

func main() {
	platform := elastisim.HomogeneousPlatform("cluster", 128, 100e9, 10e9, 80e9, 60e9)

	workload, err := elastisim.GenerateWorkload(elastisim.WorkloadConfig{
		Name:         "resilience",
		Seed:         42,
		Count:        120,
		Arrival:      job.Arrival{Kind: job.ArrivalPoisson, Rate: 1.0 / 18},
		Nodes:        [2]int{2, 64},
		MachineNodes: 128,
		NodeSpeed:    100e9,
		TypeShares:   map[job.Type]float64{job.Rigid: 0.3, job.Malleable: 0.7},
		// Jobs checkpoint every five simulated minutes; on a node failure
		// only the work since the last checkpoint is lost.
		CheckpointInterval: "300",
	})
	if err != nil {
		log.Fatal(err)
	}

	run := func(rec elastisim.RecoveryPolicy, failures bool) elastisim.Summary {
		cfg := elastisim.Config{
			Platform:  platform,
			Workload:  workload,
			Algorithm: elastisim.NewAdaptive(),
		}
		if failures {
			cfg.Failures = &elastisim.FailureSpec{
				Model:    elastisim.FailureWeibull,
				Seed:     7,
				MTBF:     40000, // per-node mean uptime, seconds
				MTTR:     600,
				Recovery: rec,
			}
		}
		result, err := elastisim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return result.Summary
	}

	fmt.Println("recovery   makespan    badput_nh  requeues  failed  completed  availability")
	fmt.Println("--------   ----------  ---------  --------  ------  ---------  ------------")
	print := func(name string, s elastisim.Summary) {
		fmt.Printf("%-9s  %9.1fs  %9.2f  %8d  %6d  %9d  %11.1f%%\n",
			name, s.Makespan, s.BadputNodeSeconds/3600, s.Requeues,
			s.FailedNode, s.Completed, s.Availability*100)
	}
	print("none", run("", false))
	print("shrink", run(elastisim.RecoverShrink, true))
	print("requeue", run(elastisim.RecoverRequeue, true))
	print("kill", run(elastisim.RecoverKill, true))

	fmt.Println("\nShrink-through-failure keeps malleable jobs alive on the surviving")
	fmt.Println("nodes, so less finished work is discarded (badput) than when every")
	fmt.Println("affected job is killed and requeued from its last checkpoint.")
}
