// Quickstart: simulate a small cluster running a hand-written workload of
// one rigid and one malleable job, and print what happened.
//
// Run with: go run ./examples/quickstart
//
// Pass -trace-out quickstart.json to also write a Chrome trace_event span
// trace of the run; load it in Perfetto (ui.perfetto.dev) or
// chrome://tracing to see per-job and per-node timelines.
//
// Pass -step 300 to drive the same simulation through the Session API in
// bounded 300-second slices of virtual time, printing a live snapshot
// between slices. The sliced run produces the same results as the
// one-shot Run — slicing is invisible to the simulation.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/elastisim"
	"repro/internal/job"
)

func main() {
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event JSON span trace to this path")
	step := flag.Float64("step", 0, "drive the run through Session.RunUntil in slices of this many virtual seconds")
	flag.Parse()
	// A 16-node cluster: 100 Gflop/s nodes, 10 GB/s links, 40 GB/s PFS.
	platform := elastisim.HomogeneousPlatform("demo", 16, 100e9, 10e9, 40e9, 40e9)

	// A malleable solver: read input, iterate (compute + allreduce) with
	// scheduling points, write output. The compute model is Amdahl-limited
	// with a 2% serial fraction.
	solver := &elastisim.Job{
		Name: "solver", Type: elastisim.Malleable,
		NumNodesMin: 2, NumNodesMax: 16, NumNodes: 4,
		SubmitTime: 0,
		Args: map[string]float64{
			"flops_iter": 2e13, // per-iteration work
			"io":         20e9, // input/output volume
		},
		ReconfigCost: job.MustExprModel("0.5 + io/(num_nodes_new*10G)"),
		App: &elastisim.Application{Phases: []elastisim.Phase{
			{Name: "load", Tasks: []elastisim.Task{
				{Kind: job.TaskRead, Model: job.MustExprModel("io"), Target: job.TargetPFS},
			}},
			{Name: "solve", Iterations: 40, SchedulingPoint: true, Tasks: []elastisim.Task{
				{Kind: job.TaskCompute, Model: job.MustExprModel("flops_iter * (0.02 + 0.98/num_nodes)")},
				{Kind: job.TaskComm, Model: job.MustExprModel("64M"), Pattern: job.PatternAllReduce},
			}},
			{Name: "store", Tasks: []elastisim.Task{
				{Kind: job.TaskWrite, Model: job.MustExprModel("io"), Target: job.TargetPFS},
			}},
		}},
	}

	// A rigid 8-node job arriving two minutes in: the adaptive scheduler
	// shrinks the solver at its next scheduling point to admit it.
	batch := &elastisim.Job{
		Name: "batch", Type: elastisim.Rigid,
		NumNodes: 8, SubmitTime: 120, WallTimeLimit: 3600,
		Args: map[string]float64{"flops": 2e14},
		App: &elastisim.Application{Phases: []elastisim.Phase{{
			Tasks: []elastisim.Task{
				{Kind: job.TaskCompute, Model: job.MustExprModel("flops / num_nodes")},
			},
		}}},
	}

	workload := &elastisim.Workload{Name: "quickstart", Jobs: []*elastisim.Job{solver, batch}}
	workload.Sort()

	opts := elastisim.Options{Trace: true}
	var traceFile *os.File
	var tracer *elastisim.Tracer
	if *traceOut != "" {
		var err error
		traceFile, err = os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		tracer = elastisim.NewTracer(elastisim.NewChromeTraceSink(traceFile))
		opts.Telemetry = tracer
	}

	cfg := elastisim.Config{
		Platform:  platform,
		Workload:  workload,
		Algorithm: elastisim.NewAdaptive(),
		Options:   opts,
	}
	var result *elastisim.Result
	var err error
	if *step > 0 {
		result, err = runStepped(cfg, *step)
	} else {
		result, err = elastisim.Run(cfg)
	}
	if err != nil {
		log.Fatal(err)
	}
	if tracer != nil {
		if err := tracer.Close(); err != nil {
			log.Fatal(err)
		}
		if err := traceFile.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (load in Perfetto or chrome://tracing)\n", *traceOut)
	}

	fmt.Printf("makespan     %.1f s\n", result.Summary.Makespan)
	fmt.Printf("utilization  %.1f%%\n", result.Summary.Utilization*100)
	fmt.Printf("reconfigs    %d\n\n", result.Summary.Reconfigs)
	for _, r := range result.Records {
		fmt.Printf("%-8s wait %6.1f s  runtime %7.1f s  nodes %d->%d (peak %d, %d reconfigs)\n",
			r.Name, r.Wait(), r.Runtime(), r.InitialNodes, r.FinalNodes, r.PeakNodes, r.Reconfigs)
	}

	fmt.Println("\nevent log:")
	for _, ev := range result.Trace {
		fmt.Println(" ", ev)
	}

	fmt.Println("\nallocation timeline (busy nodes):")
	if err := result.Recorder.BusyTimeline().WriteCSV(os.Stdout, "busy"); err != nil {
		log.Fatal(err)
	}
}

// runStepped drives the simulation through the Session lifecycle API in
// bounded slices of virtual time, peeking at live state between slices.
func runStepped(cfg elastisim.Config, slice float64) (*elastisim.Result, error) {
	s, err := elastisim.NewSession(cfg)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(os.Stderr, "stepping:  sim time   events  queued  running  completed")
	for bound := slice; ; bound += slice {
		reason, err := s.RunUntil(context.Background(), bound)
		if err != nil {
			return nil, err
		}
		p := s.Peek()
		fmt.Fprintf(os.Stderr, "          %8.0f s  %6d  %6d  %7d  %5d/%d\n",
			p.Now, p.Events, p.Queued, p.Running, p.Completed, p.Total)
		if reason == elastisim.AbortDrained {
			break
		}
	}
	return s.Result()
}
