// Embed: drive simulations through the Session lifecycle API instead of
// the one-shot elastisim.Run.
//
// Two independent sessions run concurrently under one shared deadline
// context — sessions share no mutable state, so embedding applications
// can fan simulations across goroutines freely. A third session is
// stepped interactively: bounded slices of virtual time interleaved with
// live Peek() snapshots, the pattern a GUI, notebook kernel, or
// co-simulation harness would use.
//
// Run with: go run ./examples/embed
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/elastisim"
	"repro/internal/job"
)

func main() {
	// Sessions A and B: same workload shape, different seeds and
	// policies, racing under a shared wall-clock deadline. If the
	// deadline fires first, each Run returns its partial metrics with
	// Abort reporting why.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(30*time.Second))
	defer cancel()

	var wg sync.WaitGroup
	type outcome struct {
		name string
		res  *elastisim.Result
		err  error
	}
	outcomes := make([]outcome, 2)
	for i, arm := range []struct {
		name string
		seed uint64
		algo elastisim.Algorithm
	}{
		{"easy", 7, elastisim.NewEASY()},
		{"adaptive", 7, elastisim.NewAdaptive()},
	} {
		wg.Add(1)
		go func(i int, name string, seed uint64, algo elastisim.Algorithm) {
			defer wg.Done()
			s, err := elastisim.NewSession(config(seed, algo))
			if err != nil {
				outcomes[i] = outcome{name: name, err: err}
				return
			}
			res, err := s.Run(ctx)
			outcomes[i] = outcome{name: name, res: res, err: err}
		}(i, arm.name, arm.seed, arm.algo)
	}
	wg.Wait()
	fmt.Println("concurrent sessions under a shared deadline:")
	for _, o := range outcomes {
		if o.res == nil {
			log.Fatalf("%s: %v", o.name, o.err)
		}
		fmt.Printf("  %-9s %-9s makespan %8.1f s  utilization %5.1f%%  events %d\n",
			o.name, o.res.Abort, o.res.Summary.Makespan, o.res.Summary.Utilization*100, o.res.Events)
	}

	// Session C: stepped interactively. RunUntil advances virtual time in
	// bounded slices; Peek reads live state between them without
	// disturbing the simulation. Slicing is invisible to the results —
	// this loop reproduces an uninterrupted Run bit for bit.
	s, err := elastisim.NewSession(config(11, elastisim.NewAdaptive()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nstepping one session in 1200 s slices:")
	fmt.Println("  sim time    events   queued  running  completed")
	for bound := 1200.0; ; bound += 1200.0 {
		reason, err := s.RunUntil(context.Background(), bound)
		if err != nil {
			log.Fatal(err)
		}
		p := s.Peek()
		fmt.Printf("  %8.0f s  %7d  %7d  %7d  %6d/%d\n",
			p.Now, p.Events, p.Queued, p.Running, p.Completed, p.Total)
		if reason == elastisim.AbortDrained {
			break
		}
	}
	res, err := s.Result()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstepped run finished (%s): makespan %.1f s, utilization %.1f%%, %d reconfigs\n",
		res.Abort, res.Summary.Makespan, res.Summary.Utilization*100, res.Summary.Reconfigs)
}

// config builds a small mixed workload on a 32-node machine.
func config(seed uint64, algo elastisim.Algorithm) elastisim.Config {
	wl, err := elastisim.GenerateWorkload(elastisim.WorkloadConfig{
		Name: "embed", Seed: seed, Count: 40,
		Arrival:      job.Arrival{Kind: job.ArrivalPoisson, Rate: 1.0 / 60},
		Nodes:        [2]int{1, 16},
		MachineNodes: 32,
		NodeSpeed:    100e9,
		TypeShares: map[job.Type]float64{
			job.Rigid: 0.5, job.Malleable: 0.5,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	return elastisim.Config{
		Platform:  elastisim.HomogeneousPlatform("embed", 32, 100e9, 10e9, 40e9, 40e9),
		Workload:  wl,
		Algorithm: algo,
	}
}
