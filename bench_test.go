// Package repro hosts the top-level benchmark harness: one benchmark per
// table/figure of the reconstructed evaluation (see DESIGN.md §3). Each
// benchmark regenerates its experiment via the shared drivers in
// internal/experiments and prints the resulting table once, so
//
//	go test -bench=. -benchmem
//
// reproduces every row/series reported in EXPERIMENTS.md. Custom benchmark
// metrics expose the headline simulation outputs (makespan, utilization)
// alongside the usual ns/op of the simulator itself.
package repro

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/experiments"
)

const (
	benchSeed = 7
	benchJobs = 150
)

var printMu sync.Mutex

// printTable emits the experiment table once per benchmark (first
// iteration only), keeping -benchtime sweeps readable.
func printTable(i int, t *experiments.Table) {
	if i != 0 {
		return
	}
	printMu.Lock()
	defer printMu.Unlock()
	fmt.Fprintln(os.Stdout)
	t.Fprint(os.Stdout)
}

// BenchmarkE1Utilization regenerates the utilization-over-time figure:
// rigid-only (EASY) vs fully malleable (adaptive) on the same workload.
func BenchmarkE1Utilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, rigid, mall, err := experiments.E1Utilization(benchSeed, benchJobs)
		if err != nil {
			b.Fatal(err)
		}
		printTable(i, t)
		b.ReportMetric(rigid.Summary.Utilization*100, "util_rigid_%")
		b.ReportMetric(mall.Summary.Utilization*100, "util_malleable_%")
	}
}

// BenchmarkE2MalleableShare regenerates the makespan-vs-malleable-share
// figure (0..100% in 25% steps).
func BenchmarkE2MalleableShare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, results, err := experiments.E2MalleableShare(benchSeed, benchJobs)
		if err != nil {
			b.Fatal(err)
		}
		printTable(i, t)
		b.ReportMetric(results[0].Summary.Makespan, "makespan_rigid_s")
		b.ReportMetric(results[len(results)-1].Summary.Makespan, "makespan_malleable_s")
	}
}

// BenchmarkE3Schedulers regenerates the scheduler-comparison table.
func BenchmarkE3Schedulers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, results, err := experiments.E3Schedulers(benchSeed, benchJobs)
		if err != nil {
			b.Fatal(err)
		}
		printTable(i, t)
		b.ReportMetric(results["adaptive"].Summary.Makespan, "makespan_adaptive_s")
		b.ReportMetric(results["fcfs"].Summary.Makespan, "makespan_fcfs_s")
	}
}

// BenchmarkE4BurstBuffer regenerates the I/O-offloading figure (PFS vs
// node-local burst buffers for checkpoints).
func BenchmarkE4BurstBuffer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, pfs, bb, err := experiments.E4BurstBuffer(benchSeed, benchJobs/3)
		if err != nil {
			b.Fatal(err)
		}
		printTable(i, t)
		b.ReportMetric(pfs.Summary.Makespan, "makespan_pfs_s")
		b.ReportMetric(bb.Summary.Makespan, "makespan_bb_s")
	}
}

// BenchmarkE5Scalability regenerates the simulator-performance figure
// (wall-clock vs jobs and machine size). The benchmark's own ns/op IS the
// simulator performance number here.
func BenchmarkE5Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.E5Scalability(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		printTable(i, t)
	}
}

// BenchmarkE6Validation regenerates the validation table (simulated vs
// analytic durations) and fails if any case drifts beyond 1%.
func BenchmarkE6Validation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, cases, err := experiments.E6Validation()
		if err != nil {
			b.Fatal(err)
		}
		printTable(i, t)
		worst := 0.0
		for _, c := range cases {
			if c.Error() > worst {
				worst = c.Error()
			}
			if c.Error() > 0.01 {
				b.Fatalf("validation case %q error %.2f%%", c.Name, c.Error()*100)
			}
		}
		b.ReportMetric(worst*100, "worst_err_%")
	}
}

// BenchmarkE7Evolving regenerates the evolving-jobs figure (allocation
// adaptivity under background load).
func BenchmarkE7Evolving(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, res, err := experiments.E7Evolving(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		printTable(i, t)
		b.ReportMetric(float64(res.Summary.Reconfigs), "reconfigs")
	}
}

// BenchmarkE8ReconfigCost regenerates the reconfiguration-cost sensitivity
// table.
func BenchmarkE8ReconfigCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, results, err := experiments.E8ReconfigCost(benchSeed, benchJobs)
		if err != nil {
			b.Fatal(err)
		}
		printTable(i, t)
		b.ReportMetric(results[0].Summary.Makespan, "makespan_free_s")
		b.ReportMetric(results[len(results)-1].Summary.Makespan, "makespan_300s_s")
	}
}

// BenchmarkAblationInvocation regenerates the invocation-strategy ablation
// (event-driven vs periodic scheduling), a design choice DESIGN.md calls
// out.
func BenchmarkAblationInvocation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationInvocation(benchSeed, benchJobs)
		if err != nil {
			b.Fatal(err)
		}
		printTable(i, t)
	}
}

// BenchmarkAblationFairness regenerates the resource-sharing ablation
// (max–min fairness vs naive equal split).
func BenchmarkAblationFairness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationFairness(benchSeed, benchJobs/3)
		if err != nil {
			b.Fatal(err)
		}
		printTable(i, t)
	}
}

// BenchmarkAblationMoldable regenerates the moldable-sizing ablation
// (requested / min / max / efficiency-bounded start sizes).
func BenchmarkAblationMoldable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationMoldable(benchSeed, benchJobs)
		if err != nil {
			b.Fatal(err)
		}
		printTable(i, t)
	}
}

// BenchmarkAblationFairShare regenerates the fair-share ablation
// (per-user waits under a flooding account).
func BenchmarkAblationFairShare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationFairShare(benchSeed, benchJobs)
		if err != nil {
			b.Fatal(err)
		}
		printTable(i, t)
	}
}

// BenchmarkAblationFastPath regenerates the fast-path performance ablation
// (solver bypass for job-private resources).
func BenchmarkAblationFastPath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationFastPath(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		printTable(i, t)
	}
}

// BenchmarkE9Topology regenerates the network-sensitivity figure (star vs
// tapered-tree topologies on a communication-heavy workload).
func BenchmarkE9Topology(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, results, err := experiments.E9Topology(benchSeed, benchJobs)
		if err != nil {
			b.Fatal(err)
		}
		printTable(i, t)
		b.ReportMetric(results[0].Summary.Makespan, "makespan_star_s")
		b.ReportMetric(results[len(results)-1].Summary.Makespan, "makespan_tree16_s")
	}
}

// BenchmarkE10Resilience regenerates the failure-injection comparison:
// shrink-through-failure vs kill-and-requeue under Weibull node outages.
func BenchmarkE10Resilience(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, results, err := experiments.E10Resilience(benchSeed, benchJobs)
		if err != nil {
			b.Fatal(err)
		}
		printTable(i, t)
		shrink := results["mtbf=6000.0/shrink"].Summary
		requeue := results["mtbf=6000.0/requeue"].Summary
		b.ReportMetric(shrink.BadputNodeSeconds/3600, "badput_shrink_nh")
		b.ReportMetric(requeue.BadputNodeSeconds/3600, "badput_requeue_nh")
	}
}
