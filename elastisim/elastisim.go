// Package elastisim is the public API of the ElastiSim reproduction: a
// batch-system simulator for malleable workloads.
//
// A simulation couples three ingredients:
//
//   - a platform (PlatformSpec): compute nodes, network, parallel file
//     system, and optional burst buffers;
//   - a workload (Workload): rigid, moldable, malleable, and evolving jobs
//     whose behaviour is described by phase/task application models with
//     performance-model expressions;
//   - a scheduling algorithm (Algorithm): either one of the built-ins
//     (FCFS, EASY and conservative backfilling, SJF, and the
//     malleability-aware adaptive policy) or user code implementing the
//     Algorithm interface.
//
// Minimal use:
//
//	spec := elastisim.HomogeneousPlatform("cluster", 128, 100e9, 10e9, 80e9, 60e9)
//	wl, _ := elastisim.GenerateWorkload(elastisim.WorkloadConfig{ ... })
//	res, err := elastisim.Run(elastisim.Config{
//		Platform:  spec,
//		Workload:  wl,
//		Algorithm: elastisim.NewAdaptive(),
//	})
//	fmt.Println(res.Summary.Makespan, res.Summary.Utilization)
package elastisim

import (
	"context"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/viz"
)

// Re-exported model types. The underlying packages are internal; these
// aliases are the supported surface.
type (
	// PlatformSpec describes the simulated cluster.
	PlatformSpec = platform.Spec
	// NodeGroupSpec describes a homogeneous group of nodes.
	NodeGroupSpec = platform.NodeGroupSpec
	// NetworkSpec describes the interconnect.
	NetworkSpec = platform.NetworkSpec
	// StorageSpec describes the PFS.
	StorageSpec = platform.StorageSpec
	// BurstBufferSpec describes the burst-buffer tier.
	BurstBufferSpec = platform.BurstBufferSpec
	// Quantity is a float64 that unmarshals from a JSON number or an
	// engineering-suffixed expression string ("100G").
	Quantity = platform.Quantity
	// FailureSpec describes a node failure/repair model (MTBF/MTTR
	// processes or scripted outages) plus the job-recovery policy.
	FailureSpec = failure.Spec
	// Outage is one scripted node outage of the trace failure model.
	Outage = failure.Outage
	// RecoveryPolicy selects how jobs hit by a node failure recover
	// (see the Recover* constants).
	RecoveryPolicy = failure.RecoveryPolicy
	// JobStatus is a job's terminal outcome (see the Status* constants).
	JobStatus = metrics.JobStatus

	// Workload is an ordered collection of jobs.
	Workload = job.Workload
	// Job is one workload entry.
	Job = job.Job
	// Application is a job's phase/task behaviour model.
	Application = job.Application
	// Phase is a stage of an application.
	Phase = job.Phase
	// Task is one step of a phase.
	Task = job.Task
	// Model is a performance model (expression or vector).
	Model = job.Model
	// WorkloadConfig drives the synthetic workload generator.
	WorkloadConfig = job.Config

	// Algorithm is the scheduling-policy interface.
	Algorithm = sched.Algorithm
	// Invocation is the cluster snapshot an Algorithm schedules against.
	Invocation = sched.Invocation
	// JobView is a read-only job snapshot inside an Invocation.
	JobView = sched.JobView
	// Decision is one scheduling action.
	Decision = sched.Decision

	// Options tunes engine behaviour (invocation interval, tracing, ...).
	Options = core.Options
	// Summary aggregates a finished run.
	Summary = metrics.Summary
	// JobRecord is the per-job outcome.
	JobRecord = metrics.JobRecord
	// Recorder holds the full metric state of a run.
	Recorder = metrics.Recorder
	// Timeline is a step function of time (utilization, queue depth).
	Timeline = metrics.Timeline
	// TraceEvent is one entry of the engine's optional event log.
	TraceEvent = core.TraceEvent

	// Tracer is the telemetry fan-out; attach one via Options.Telemetry to
	// stream span traces to sinks. A nil Tracer (the default) disables
	// telemetry at zero cost.
	Tracer = telemetry.Tracer
	// TelemetrySink consumes telemetry events (see NewChromeTraceSink and
	// NewJSONLTraceSink).
	TelemetrySink = telemetry.Sink
	// TelemetrySnapshot is the self-profiling artifact of a run: DES kernel,
	// fluid solver, and scheduler counters plus wall-clock/heap data.
	TelemetrySnapshot = telemetry.Snapshot
	// AuditLog records every scheduler invocation with its decisions and
	// grant/deny reasons; attach via Tracer.SetAudit.
	AuditLog = telemetry.AuditLog
	// RunProgress is the opt-in live progress ticker (Options.Progress).
	RunProgress = telemetry.RunProgress
	// Progress is the sink interface Options.Progress accepts: a
	// RunProgress terminal ticker or a ProgressFanOut broadcaster.
	Progress = telemetry.Progress
	// ProgressFanOut broadcasts one run's progress stream to any number
	// of concurrent subscribers (SSE streams, pollers); attach via
	// Options.Progress.
	ProgressFanOut = telemetry.ProgressFanOut
	// ProgressUpdate is one sampled progress point of a ProgressFanOut.
	ProgressUpdate = telemetry.ProgressUpdate
)

// NoJob marks machine-level trace events (node down/up), which carry the
// affected node in TraceEvent.Node instead of a job id.
const NoJob = core.NoJob

// NewTracer builds a telemetry tracer emitting to the given sinks.
func NewTracer(sinks ...TelemetrySink) *Tracer { return telemetry.New(sinks...) }

// NewChromeTraceSink streams Chrome trace_event JSON (Perfetto-loadable)
// to w. Close the tracer to terminate the JSON document.
func NewChromeTraceSink(w io.Writer) TelemetrySink { return telemetry.NewChromeSink(w) }

// NewJSONLTraceSink streams line-delimited JSON telemetry events to w.
func NewJSONLTraceSink(w io.Writer) TelemetrySink { return telemetry.NewJSONLSink(w) }

// NewAuditLog streams scheduler decision audit records as JSON lines to w.
func NewAuditLog(w io.Writer) *AuditLog { return telemetry.NewAuditLog(w) }

// Job type classes, re-exported.
const (
	Rigid     = job.Rigid
	Moldable  = job.Moldable
	Malleable = job.Malleable
	Evolving  = job.Evolving
)

// Failure models, re-exported.
const (
	FailureExponential = failure.ModelExponential
	FailureWeibull     = failure.ModelWeibull
	FailureTrace       = failure.ModelTrace
)

// Job recovery policies after node failures, re-exported.
const (
	RecoverShrink  = failure.RecoverShrink
	RecoverRequeue = failure.RecoverRequeue
	RecoverKill    = failure.RecoverKill
)

// Job completion statuses, re-exported.
const (
	StatusCompleted       = metrics.StatusCompleted
	StatusKilledWalltime  = metrics.StatusKilledWalltime
	StatusKilledScheduler = metrics.StatusKilledScheduler
	StatusFailedNode      = metrics.StatusFailedNode
	StatusRequeued        = metrics.StatusRequeued
)

// Config assembles one simulation run.
type Config struct {
	// Platform describes the cluster.
	Platform *PlatformSpec
	// Workload lists the jobs.
	Workload *Workload
	// Algorithm is the scheduling policy (see NewAlgorithm for built-ins).
	Algorithm Algorithm
	// Failures injects node failures and repairs (nil = none). It
	// overrides any "failures" object in the platform spec.
	Failures *FailureSpec
	// Options tunes the engine.
	Options Options

	// Metrics, when set, receives operational counters about the session
	// (sessions started/finished/aborted, kernel and scheduler totals on
	// finish) in the shared Prometheus-style registry. Flight, when set,
	// records session lifecycle events into the crash flight recorder.
	// Both are runtime-only wiring — never part of a serialized config —
	// and nil (the default) disables them with no observable effect on
	// the simulation (pinned by TestObsDoesNotChangeOutputs).
	Metrics *MetricsRegistry
	Flight  *FlightRecorder
}

// Result is the outcome of a run.
type Result struct {
	// Summary aggregates batch metrics (makespan, waits, utilization...).
	Summary Summary
	// Records lists per-job outcomes in submission order.
	Records []*JobRecord
	// Recorder exposes timelines, Gantt segments, and CSV/JSON export.
	Recorder *Recorder
	// Invocations and Decisions count scheduler activity; Events counts
	// simulator events (for simulator-performance experiments).
	Invocations uint64
	Decisions   uint64
	Events      uint64
	// Solves counts fluid-solver recomputations and SolvedActivities the
	// total activities re-solved across them; the incremental solver
	// drives the latter well below the full-recompute baseline.
	Solves           uint64
	SolvedActivities uint64
	// Warnings lists rejected decisions and other anomalies.
	Warnings []string
	// Trace is the event log (when Options.Trace was set).
	Trace []TraceEvent
	// Telemetry is the run's self-profiling snapshot: kernel, solver, and
	// scheduler counters (always deterministic) plus wall-clock and heap
	// measurements (machine-dependent; see TelemetrySnapshot.StripWall).
	Telemetry TelemetrySnapshot
	// WallClock is the host time the simulation took.
	WallClock time.Duration
	// Abort records how the run ended: AbortDrained for natural
	// completion, AbortHorizon when Options.Horizon (or a RunUntil bound)
	// cut it short, AbortCancelled/AbortDeadline when a context stopped a
	// Session run mid-flight (the Result then holds partial metrics).
	Abort AbortReason
}

// Run executes one simulation to completion. It is exactly
// NewSession(cfg) followed by Session.Run with a background context; use
// a Session directly for cancellation, bounded execution, stepping, or
// live progress snapshots.
func Run(cfg Config) (*Result, error) {
	s, err := NewSession(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run(context.Background())
}

// WriteGanttSVG renders the run's allocation segments as an SVG Gantt
// chart: one colored band per job, reconfigurations marked at segment
// boundaries, and node failure/repair intervals overlaid as hatched bands.
func (r *Result) WriteGanttSVG(w io.Writer, title string) error {
	return viz.WriteGantt(w, r.Recorder, viz.Options{Title: title})
}

// WriteUtilizationSVG renders the busy-nodes timeline as an SVG step plot.
func (r *Result) WriteUtilizationSVG(w io.Writer, title string) error {
	return viz.WriteUtilization(w, r.Recorder, viz.Options{Title: title})
}

// EstimateRuntime computes a job's contention-free analytic runtime on n
// nodes (see the job package's estimator for assumptions).
func EstimateRuntime(j *Job, n int, ref job.PlatformRef) (float64, error) {
	return job.EstimateRuntime(j, n, ref)
}

// PlatformRef carries the magnitudes EstimateRuntime needs (re-export).
type PlatformRef = job.PlatformRef

// HomogeneousPlatform builds a uniform cluster: nodes at nodeSpeed flops/s,
// star network with linkBW bytes/s injection links, and a PFS with the
// given aggregate read/write bandwidths.
func HomogeneousPlatform(name string, nodes int, nodeSpeed, linkBW, pfsRead, pfsWrite float64) *PlatformSpec {
	return platform.Homogeneous(name, nodes, nodeSpeed, linkBW, pfsRead, pfsWrite)
}

// LoadPlatform reads and validates a JSON platform description.
func LoadPlatform(path string) (*PlatformSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return platform.ParseSpec(data)
}

// LoadWorkload reads and validates a JSON workload for a machine of
// totalNodes nodes.
func LoadWorkload(path string, totalNodes int) (*Workload, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return job.ParseWorkload(data, totalNodes)
}

// GenerateWorkload builds a reproducible synthetic workload.
func GenerateWorkload(cfg WorkloadConfig) (*Workload, error) {
	return job.Generate(cfg)
}

// WorkloadStream generates the same jobs as GenerateWorkload one at a time
// in constant memory (re-export; see job.Stream).
type WorkloadStream = job.Stream

// NewWorkloadStream starts streaming the synthetic workload cfg describes.
func NewWorkloadStream(cfg WorkloadConfig) (*WorkloadStream, error) {
	return job.NewStream(cfg)
}

// LoadSWF converts a Standard Workload Format trace into a workload.
func LoadSWF(path string, opts job.SWFOptions) (*Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return job.ParseSWF(f, opts)
}

// SWFOptions configures SWF conversion (re-export).
type SWFOptions = job.SWFOptions

// Built-in algorithm constructors.

// NewFCFS returns strict first-come-first-served.
func NewFCFS() Algorithm { return &sched.FCFS{} }

// NewEASY returns EASY backfilling.
func NewEASY() Algorithm { return &sched.EASY{} }

// NewConservative returns conservative backfilling.
func NewConservative() Algorithm { return &sched.Conservative{} }

// NewSJF returns shortest-job-first.
func NewSJF() Algorithm { return &sched.SJF{} }

// NewAdaptive returns the malleability-aware policy (EASY starts +
// shrink-to-admit + expand-to-fill + evolving arbitration).
func NewAdaptive() Algorithm { return &sched.Adaptive{} }

// NewFirstFit returns list scheduling (start whatever fits, no
// reservations) — the baseline that motivates backfilling.
func NewFirstFit() Algorithm { return &sched.FirstFit{} }

// NewFairShare returns usage-ordered scheduling with EASY backfilling:
// users with less accumulated consumption go first. The returned value is
// stateful and must be used for a single simulation run.
func NewFairShare() Algorithm { return &sched.FairShare{} }

// NewPacked returns EASY with locality-packed placement: start decisions
// are pinned to node sets spanning as few leaf switches as possible
// (meaningful on tree topologies).
func NewPacked() Algorithm { return &sched.Packed{Base: &sched.EASY{}} }

// algorithmFactories maps names to constructors for NewAlgorithm.
var algorithmFactories = map[string]func() Algorithm{
	"fcfs":         NewFCFS,
	"easy":         NewEASY,
	"conservative": NewConservative,
	"sjf":          NewSJF,
	"adaptive":     NewAdaptive,
	"firstfit":     NewFirstFit,
	"fairshare":    NewFairShare,
	"packed":       NewPacked,
}

// NewAlgorithm builds a built-in algorithm by name; see AlgorithmNames.
func NewAlgorithm(name string) (Algorithm, error) {
	f, ok := algorithmFactories[name]
	if !ok {
		return nil, fmt.Errorf("elastisim: unknown algorithm %q (have %v)", name, AlgorithmNames())
	}
	return f(), nil
}

// AlgorithmNames lists the built-in algorithms.
func AlgorithmNames() []string {
	names := make([]string, 0, len(algorithmFactories))
	for n := range algorithmFactories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
