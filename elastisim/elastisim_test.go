package elastisim

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/job"
)

func smallConfig(t *testing.T, algo Algorithm) Config {
	t.Helper()
	wl, err := GenerateWorkload(WorkloadConfig{
		Seed: 3, Count: 30,
		Arrival:      job.Arrival{Kind: job.ArrivalPoisson, Rate: 0.05},
		Nodes:        [2]int{1, 8},
		MachineNodes: 16,
		NodeSpeed:    100e9,
		TypeShares:   map[job.Type]float64{job.Rigid: 0.5, job.Malleable: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Platform:  HomogeneousPlatform("t", 16, 100e9, 10e9, 40e9, 40e9),
		Workload:  wl,
		Algorithm: algo,
	}
}

func TestRunEndToEnd(t *testing.T) {
	res, err := Run(smallConfig(t, NewAdaptive()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Jobs != 30 {
		t.Errorf("jobs = %d", res.Summary.Jobs)
	}
	if res.Summary.Completed+res.Summary.Killed != 30 {
		t.Errorf("finished %d+%d != 30", res.Summary.Completed, res.Summary.Killed)
	}
	if res.Summary.Makespan <= 0 {
		t.Error("zero makespan")
	}
	if res.Summary.Utilization <= 0 || res.Summary.Utilization > 1 {
		t.Errorf("utilization %v", res.Summary.Utilization)
	}
	if len(res.Records) != 30 {
		t.Errorf("records %d", len(res.Records))
	}
	if res.Events == 0 || res.Invocations == 0 {
		t.Error("missing counters")
	}
	if res.WallClock <= 0 {
		t.Error("no wall clock")
	}
}

func TestRunMissingPieces(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	cfg := smallConfig(t, nil)
	if _, err := Run(cfg); err == nil {
		t.Error("nil algorithm accepted")
	}
}

func TestNewAlgorithm(t *testing.T) {
	for _, name := range AlgorithmNames() {
		a, err := NewAlgorithm(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if a.Name() == "" {
			t.Errorf("%s: empty Name()", name)
		}
	}
	if _, err := NewAlgorithm("quantum"); err == nil {
		t.Error("unknown algorithm accepted")
	}
	names := AlgorithmNames()
	want := []string{"adaptive", "conservative", "easy", "fairshare", "fcfs", "firstfit", "packed", "sjf"}
	if len(names) != len(want) {
		t.Fatalf("names %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names %v, want %v", names, want)
		}
	}
}

func TestAllBuiltinsCompleteWorkload(t *testing.T) {
	for _, name := range AlgorithmNames() {
		algo, err := NewAlgorithm(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(smallConfig(t, algo))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Summary.Completed+res.Summary.Killed != 30 {
			t.Errorf("%s finished only %d jobs", name, res.Summary.Completed+res.Summary.Killed)
		}
	}
}

func TestLoadPlatformAndWorkloadFiles(t *testing.T) {
	dir := t.TempDir()
	platPath := filepath.Join(dir, "platform.json")
	wlPath := filepath.Join(dir, "workload.json")
	platJSON := `{
		"name": "file-cluster",
		"nodes": [{"count": 8, "speed": "100G"}],
		"network": {"link_bandwidth": "10G"},
		"pfs": {"read_bandwidth": "40G", "write_bandwidth": "40G"}
	}`
	wlJSON := `{
		"jobs": [{
			"type": "rigid", "submit_time": 0, "num_nodes": 2,
			"phases": [{"tasks": [{"type": "compute", "flops": "200G / num_nodes"}]}]
		}]
	}`
	if err := os.WriteFile(platPath, []byte(platJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wlPath, []byte(wlJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := LoadPlatform(platPath)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := LoadWorkload(wlPath, spec.TotalNodes())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Platform: spec, Workload: wl, Algorithm: NewFCFS()})
	if err != nil {
		t.Fatal(err)
	}
	// 200 Gflop over 2 nodes at 100 Gflop/s = 1 s.
	if r := res.Records[0]; r.Runtime() != 1 {
		t.Errorf("runtime %v, want 1", r.Runtime())
	}
	if _, err := LoadPlatform(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing platform file accepted")
	}
	if _, err := LoadWorkload(filepath.Join(dir, "missing.json"), 8); err == nil {
		t.Error("missing workload file accepted")
	}
}

func TestLoadSWF(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.swf")
	trace := strings.Repeat("1 0 0 100 4 -1 -1 4 200 -1 1 1 1 1 1 1 -1 -1\n", 5)
	if err := os.WriteFile(path, []byte(trace), 0o644); err != nil {
		t.Fatal(err)
	}
	wl, err := LoadSWF(path, SWFOptions{NodeSpeed: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if len(wl.Jobs) != 5 {
		t.Errorf("jobs %d", len(wl.Jobs))
	}
	if _, err := LoadSWF(filepath.Join(dir, "missing.swf"), SWFOptions{NodeSpeed: 1e9}); err == nil {
		t.Error("missing SWF accepted")
	}
}
