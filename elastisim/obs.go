package elastisim

import (
	"fmt"

	"repro/internal/obs"
)

// Observability re-exports. The obs package observes the system *running*
// simulations (the daemon, its queues, its sessions) where the telemetry
// package observes the simulations themselves; both share the same
// zero-interference contract.
type (
	// MetricsRegistry is a Prometheus-style metrics registry (counters,
	// gauges, fixed-bucket histograms) rendered by WritePrometheus.
	// Attach one via Config.Metrics; many sessions may share a registry.
	MetricsRegistry = obs.Registry
	// FlightRecorder is a bounded ring of recent system events, dumped as
	// a postmortem JSON artifact on panic, abort, or SIGQUIT. Attach one
	// via Config.Flight.
	FlightRecorder = obs.FlightRecorder
)

// NewMetricsRegistry creates an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewFlightRecorder creates a flight recorder retaining the last n
// entries (a package default when n <= 0).
func NewFlightRecorder(n int) *FlightRecorder { return obs.NewFlightRecorder(n) }

// sessionObs is the per-session instrumentation over a shared registry.
// Every hook is nil-safe: with Config.Metrics and Config.Flight unset,
// each call is a handful of nil checks and the session behaves (and
// allocates) exactly as before — pinned by TestObsDoesNotChangeOutputs.
type sessionObs struct {
	reg    *obs.Registry
	flight *obs.FlightRecorder
	// finished guards the once-per-session terminal accounting: partial
	// Result() calls while stepping must not double-count a session.
	finished bool
}

// newSessionObs wires the session counters and records the session's
// birth in the flight recorder.
func newSessionObs(cfg Config) *sessionObs {
	so := &sessionObs{reg: cfg.Metrics, flight: cfg.Flight}
	if so.reg != nil {
		so.reg.Help("elastisim_sessions_started_total", "sessions created by NewSession")
		so.reg.Help("elastisim_sessions_finished_total", "sessions that produced a final result, by abort reason")
		so.reg.Help("elastisim_session_aborts_total", "run slices stopped by context cancellation or deadline")
		so.reg.Help("elastisim_session_panics_total", "sessions poisoned by an internal engine panic")
		so.reg.Counter("elastisim_sessions_started_total").Inc()
	}
	if so.flight != nil {
		jobs := 0
		if cfg.Workload != nil {
			jobs = len(cfg.Workload.Jobs)
		}
		algo := "?"
		if cfg.Algorithm != nil {
			algo = cfg.Algorithm.Name()
		}
		so.flight.Recordf("session", "created: %d jobs, algorithm %s", jobs, algo)
	}
	return so
}

// recordAbort counts one cancelled/deadline-stopped run slice. Sessions
// stay resumable after these, so they are counted per occurrence, not
// per session.
func (so *sessionObs) recordAbort(reason AbortReason) {
	if so == nil {
		return
	}
	if so.reg != nil {
		so.reg.Counter(fmt.Sprintf("elastisim_session_aborts_total{reason=%q}", reason.String())).Inc()
	}
	so.flight.Recordf("session", "run slice aborted: %s", reason)
}

// recordPanic counts the session's poisoning and preserves the panic in
// the flight ring (the postmortem artifact quotes it verbatim).
func (so *sessionObs) recordPanic(ie *InternalError) {
	if so == nil {
		return
	}
	so.reg.Counter("elastisim_session_panics_total").Inc()
	so.flight.Recordf("panic", "session poisoned at sim t=%.3fs after %d events: %s", ie.SimTime, ie.Events, ie.Msg)
}

// recordFinish runs exactly once per session, when a final Result is
// cached, and exports the run's existing counters — kernel, scheduler,
// solver — into the shared registry. Nothing here is re-counted: the
// values come off the Result and engine stats that every run already
// maintains.
func (so *sessionObs) recordFinish(s *Session, res *Result, reason AbortReason) {
	if so == nil || so.finished {
		return
	}
	so.finished = true
	if so.reg != nil {
		so.reg.Counter(fmt.Sprintf("elastisim_sessions_finished_total{reason=%q}", reason.String())).Inc()
		so.reg.Help("elastisim_sim_events_total", "DES kernel events fired across finished sessions")
		so.reg.Counter("elastisim_sim_events_total").Add(res.Events)
		so.reg.Counter("elastisim_sim_invocations_total").Add(res.Invocations)
		so.reg.Counter("elastisim_sim_invocations_elided_total").Add(res.Telemetry.Scheduler.Elided)
		so.reg.Counter("elastisim_sim_decisions_total").Add(res.Decisions)
		so.reg.Counter("elastisim_sim_solves_total").Add(res.Solves)
		so.reg.Counter("elastisim_sim_jobs_total").Add(uint64(len(res.Records)))
		ks := s.eng.KernelStats()
		so.reg.Counter("elastisim_sim_events_cancelled_total").Add(ks.Cancelled)
		so.reg.Counter("elastisim_sim_ladder_top_transfers_total").Add(ks.TopTransfers)
		so.reg.Counter("elastisim_sim_ladder_rung_spawns_total").Add(ks.RungSpawns)
		so.reg.Gauge("elastisim_sim_peak_queue", nil).SetMax(float64(ks.PeakQueue))
	}
	so.flight.Recordf("session", "finished (%s): makespan=%.3fs events=%d invocations=%d jobs=%d",
		reason, res.Summary.Makespan, res.Events, res.Invocations, len(res.Records))
}
