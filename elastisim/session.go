package elastisim

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/core"
)

// AbortReason reports why a bounded simulation run returned control; see
// the Abort* constants. Result.Abort carries it, and Session.RunUntil
// returns it directly.
type AbortReason = core.AbortReason

// Abort reasons, re-exported.
const (
	// AbortDrained: the event queue emptied — the simulation ran to
	// natural completion.
	AbortDrained = core.AbortDrained
	// AbortCancelled: the context was cancelled between events.
	AbortCancelled = core.AbortCancelled
	// AbortDeadline: the context's deadline expired between events.
	AbortDeadline = core.AbortDeadline
	// AbortHorizon: the run hit a virtual-time bound (Options.Horizon or
	// the RunUntil target) with events still queued.
	AbortHorizon = core.AbortHorizon
)

// InternalError reports an engine invariant violation (an internal panic)
// caught at the public API boundary. It means a bug in the simulator, not
// in the caller's configuration: the session that produced it is poisoned
// and every subsequent call returns the same error.
type InternalError struct {
	// Msg is the panic message.
	Msg string
	// SimTime is the simulation clock when the invariant tripped.
	SimTime float64
	// Events is the number of events executed up to that point.
	Events uint64
	// Stack is the goroutine stack captured at the panic site.
	Stack []byte
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("elastisim: internal error at sim time %g after %d events: %s", e.SimTime, e.Events, e.Msg)
}

// Peek is a live, read-only snapshot of a session mid-run, cheap enough to
// take between Step or RunUntil slices.
type Peek struct {
	// Now is the simulation clock in seconds.
	Now float64
	// Events is the number of events executed so far.
	Events uint64
	// Queued and Running count jobs currently waiting and allocated;
	// Completed counts jobs that reached a terminal state, out of Total.
	Queued, Running, Completed, Total int
	// Done reports that the event queue is empty: the simulation cannot
	// advance further.
	Done bool
	// Summary aggregates the metrics accumulated so far. Mid-run it covers
	// only finished jobs and the timeline up to Now.
	Summary Summary
}

// Session is one simulation with an explicit lifecycle: build it with
// NewSession (full validation, no execution), then drive it with any mix
// of Run, RunUntil, and Step, observing progress through Now and Peek.
//
// Execution slicing is invisible to the simulation: a session driven by a
// thousand Step calls, by RunUntil increments, or by one Run produces
// bit-identical results. Run(cfg) is exactly NewSession(cfg) followed by
// Run(context.Background()).
//
// A Session is safe for use from multiple goroutines (calls serialize on
// an internal mutex — so Peek blocks while a Run slice is executing), and
// distinct Sessions are fully independent: they share no mutable state and
// may run concurrently.
type Session struct {
	mu       sync.Mutex
	eng      *core.Engine
	wall     time.Duration
	internal *InternalError // set once an invariant panic poisons the session
	result   *Result        // cached once the simulation completed
	obs      *sessionObs    // operational metrics + flight recorder hooks
}

// NewSession validates the configuration and builds a simulation without
// executing any of it. All config-dependent failures surface here as
// errors — including ones that would otherwise trip engine invariants
// later, like scripted outages naming nodes the platform does not have.
// Malformed configurations return errors, never panic.
func NewSession(cfg Config) (s *Session, err error) {
	defer func() {
		if r := recover(); r != nil {
			s, err = nil, fmt.Errorf("elastisim: invalid config: %v", r)
		}
	}()
	if cfg.Platform == nil || cfg.Workload == nil {
		return nil, fmt.Errorf("elastisim: config needs a platform and a workload")
	}
	if cfg.Algorithm == nil {
		return nil, fmt.Errorf("elastisim: config needs a scheduling algorithm")
	}
	opts := cfg.Options
	if cfg.Failures != nil {
		opts.Failures = cfg.Failures
	}
	eng, err := core.New(cfg.Platform, cfg.Workload, cfg.Algorithm, opts)
	if err != nil {
		return nil, err
	}
	return &Session{eng: eng, obs: newSessionObs(cfg)}, nil
}

// guard runs fn, converting an engine invariant panic into an
// *InternalError that poisons the session. Callers hold s.mu.
func (s *Session) guard(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			ie := &InternalError{
				Msg:     fmt.Sprint(r),
				SimTime: s.eng.Now(),
				Events:  s.eng.Steps(),
				Stack:   debug.Stack(),
			}
			s.internal = ie
			s.obs.recordPanic(ie)
			err = ie
		}
	}()
	fn()
	return nil
}

// Run executes the simulation until it completes or ctx is done.
//
// On completion it returns the full Result (with Abort == AbortDrained,
// or AbortHorizon when Options.Horizon cut the run short) and a nil
// error. On cancellation it returns BOTH a partial Result — the metrics,
// trace, and telemetry accumulated so far, with Abort recording why —
// and ctx.Err(), so callers can flush partial outputs before unwinding.
// The session stays resumable after a cancelled Run: calling Run again
// continues exactly where it stopped.
func (s *Session) Run(ctx context.Context) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.internal != nil {
		return nil, s.internal
	}
	if s.result != nil {
		return s.result, nil
	}
	var reason AbortReason
	if err := s.guard(func() {
		t0 := time.Now()
		reason = s.eng.RunCtx(ctx)
		s.wall += time.Since(t0)
	}); err != nil {
		return nil, err
	}
	res, err := s.resultLocked(reason)
	if err != nil {
		return nil, err
	}
	if reason == AbortCancelled || reason == AbortDeadline {
		s.obs.recordAbort(reason)
		return res, ctx.Err()
	}
	s.result = res
	s.obs.recordFinish(s, res, reason)
	return res, nil
}

// RunUntil executes events up to simulation time t (clamped to
// Options.Horizon) and advances the clock to t, unless ctx stops the run
// or the queue drains first. The returned reason tells which; the error
// is ctx.Err() when the context stopped the run, nil otherwise.
func (s *Session) RunUntil(ctx context.Context, t float64) (AbortReason, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.internal != nil {
		return AbortCancelled, s.internal
	}
	var reason AbortReason
	if err := s.guard(func() {
		t0 := time.Now()
		reason = s.eng.RunUntilCtx(ctx, t)
		s.wall += time.Since(t0)
	}); err != nil {
		return reason, err
	}
	if reason == AbortCancelled || reason == AbortDeadline {
		s.obs.recordAbort(reason)
		return reason, ctx.Err()
	}
	return reason, nil
}

// Step executes up to n events and returns how many fired. Zero means the
// simulation cannot advance (queue drained or past the horizon).
func (s *Session) Step(n int) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.internal != nil {
		return 0, s.internal
	}
	var fired int
	if err := s.guard(func() {
		t0 := time.Now()
		fired = s.eng.StepN(n)
		s.wall += time.Since(t0)
	}); err != nil {
		return 0, err
	}
	return fired, nil
}

// Now returns the current simulation time in seconds.
func (s *Session) Now() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Now()
}

// Peek returns a live snapshot of the session's progress. It is valid at
// any point in the lifecycle, including before the first event and after
// completion.
func (s *Session) Peek() Peek {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := s.eng.TotalJobs()
	return Peek{
		Now:       s.eng.Now(),
		Events:    s.eng.Steps(),
		Queued:    s.eng.QueuedJobs(),
		Running:   s.eng.RunningJobs(),
		Completed: total - s.eng.Outstanding(),
		Total:     total,
		Done:      s.eng.Drained(),
		Summary:   s.eng.Recorder().Summary(),
	}
}

// Result assembles the metrics accumulated so far into a Result without
// running anything further. Use it after driving the session with Step or
// RunUntil; Run produces the same Result itself. If the simulation has
// not completed, the Result is partial and Abort is AbortHorizon.
func (s *Session) Result() (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.internal != nil {
		return nil, s.internal
	}
	if s.result != nil {
		return s.result, nil
	}
	reason := AbortHorizon
	if s.eng.Drained() {
		reason = AbortDrained
	}
	res, err := s.resultLocked(reason)
	if err != nil {
		return nil, err
	}
	if reason == AbortDrained {
		s.result = res
		s.obs.recordFinish(s, res, reason)
	}
	return res, nil
}

// resultLocked finalizes the engine state into a Result. When the run was
// cut short it first force-closes open telemetry spans so streamed traces
// stay well-nested. Callers hold s.mu.
func (s *Session) resultLocked(reason AbortReason) (res *Result, err error) {
	gerr := s.guard(func() {
		if reason != AbortDrained {
			s.eng.FinalizeTelemetry()
		}
		var rec *Recorder
		rec, err = s.eng.Finish()
		if err != nil {
			return
		}
		res = &Result{
			Summary:          rec.Summary(),
			Records:          rec.Records(),
			Recorder:         rec,
			Invocations:      s.eng.Invocations(),
			Decisions:        s.eng.DecisionsApplied(),
			Events:           s.eng.Steps(),
			Solves:           s.eng.Solves(),
			SolvedActivities: s.eng.SolvedActivities(),
			Warnings:         s.eng.Warnings(),
			Trace:            s.eng.Trace(),
			Telemetry:        s.eng.TelemetrySnapshot(),
			WallClock:        s.wall,
			Abort:            reason,
		}
	})
	if gerr != nil {
		return nil, gerr
	}
	return res, err
}
