package elastisim

import (
	"testing"

	"repro/internal/job"
)

// FuzzNewSession pins the error-never-panic contract of session
// construction: whatever malformed shape the config takes — zero or
// negative node counts, min > max, cyclic dependencies, absurd failure
// specs — NewSession must return an error (or, for configs that happen to
// be valid, a session), and must not panic. The fuzzer mutates the
// numeric knobs; the seed corpus covers each documented failure class.
func FuzzNewSession(f *testing.F) {
	f.Add(0, 4, 1, 4, 100e9, 0.0, 0.0, false)       // zero machine nodes
	f.Add(16, -3, 1, 4, 100e9, 0.0, 0.0, false)     // negative job nodes
	f.Add(16, 4, 8, 2, 100e9, 0.0, 0.0, false)      // min > max
	f.Add(16, 4, 1, 4, -1.0, 0.0, 0.0, false)       // negative node speed
	f.Add(16, 4, 1, 4, 100e9, 0.0, 0.0, true)       // cyclic dependencies
	f.Add(16, 4, 1, 4, 100e9, -5.0, 10.0, false)    // negative MTBF
	f.Add(16, 4, 1, 4, 100e9, 20000.0, -1.0, false) // negative MTTR
	f.Add(16, 64, 32, 64, 100e9, 0.0, 0.0, false)   // job larger than machine
	f.Add(-2, 4, 1, 4, 100e9, 1000.0, 10.0, false)  // negative machine

	f.Fuzz(func(t *testing.T, machineNodes, jobNodes, minNodes, maxNodes int, nodeSpeed, mtbf, mttr float64, cyclic bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("NewSession panicked: %v", r)
			}
		}()

		plat := HomogeneousPlatform("fuzz", machineNodes, nodeSpeed, 10e9, 40e9, 40e9)
		app := &Application{Phases: []Phase{{Tasks: []Task{{
			Kind: job.TaskCompute, Model: job.MustExprModel("1e11"),
		}}}}}
		j0 := &Job{ID: 0, Type: Rigid, NumNodes: jobNodes, App: app}
		j1 := &Job{ID: 1, Type: Malleable, NumNodesMin: minNodes, NumNodesMax: maxNodes, App: app}
		j2 := &Job{ID: 2, Type: Rigid, NumNodes: 1, App: app, Dependencies: []job.ID{1}}
		if cyclic {
			j1.Dependencies = []job.ID{2}
		}
		cfg := Config{
			Platform:  plat,
			Workload:  &Workload{Jobs: []*Job{j0, j1, j2}},
			Algorithm: NewAdaptive(),
		}
		if mtbf != 0 || mttr != 0 {
			cfg.Failures = &FailureSpec{Model: FailureExponential, Seed: 1, MTBF: Quantity(mtbf), MTTR: Quantity(mttr)}
		}

		s, err := NewSession(cfg)
		if (s == nil) == (err == nil) {
			t.Fatalf("NewSession returned session=%v err=%v; want exactly one", s != nil, err)
		}
	})
}
