package elastisim

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"testing"

	"repro/internal/job"
)

// runHash executes one fixed-seed simulation with node failures enabled
// and digests everything observable — the event trace, the per-job CSV,
// and the summary — into one FNV-1a hash.
func runHash(t *testing.T) uint64 {
	t.Helper()
	wl, err := GenerateWorkload(WorkloadConfig{
		Seed: 11, Count: 60,
		Arrival:            job.Arrival{Kind: job.ArrivalPoisson, Rate: 0.05},
		Nodes:              [2]int{1, 16},
		MachineNodes:       32,
		NodeSpeed:          100e9,
		TypeShares:         map[job.Type]float64{job.Rigid: 0.4, job.Moldable: 0.2, job.Malleable: 0.3, job.Evolving: 0.1},
		CheckpointInterval: "120",
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Platform:  HomogeneousPlatform("det", 32, 100e9, 10e9, 40e9, 40e9),
		Workload:  wl,
		Algorithm: NewAdaptive(),
		Failures: &FailureSpec{
			Model: FailureExponential, Seed: 5,
			MTBF: 20000, MTTR: 300,
		},
		Options: Options{Trace: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.NodeFailures == 0 {
		t.Fatal("scenario injected no failures; the test is vacuous")
	}
	h := fnv.New64a()
	for _, ev := range res.Trace {
		fmt.Fprintln(h, ev.String())
	}
	var csv bytes.Buffer
	if err := res.Recorder.WriteJobsCSV(&csv); err != nil {
		t.Fatal(err)
	}
	h.Write(csv.Bytes())
	fmt.Fprintf(h, "%+v", res.Summary)
	return h.Sum64()
}

// TestDeterminismRegression runs the same failure-laden mixed workload
// twice and demands bit-identical traces: any nondeterminism bug (map
// iteration, pointer ordering, RNG sharing) fails loudly here.
func TestDeterminismRegression(t *testing.T) {
	a := runHash(t)
	b := runHash(t)
	if a != b {
		t.Fatalf("two identical runs hashed %x and %x", a, b)
	}
}
