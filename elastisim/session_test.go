package elastisim

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/job"
)

// TestSessionRunMatchesRun pins the compatibility contract: Run(cfg) and
// NewSession(cfg)+Run(ctx) must produce byte-identical outputs — trace at
// exact float precision, per-job CSV, summary — on the mixed workload
// with failures and telemetry counters.
func TestSessionRunMatchesRun(t *testing.T) {
	ref, refTrace, refCSV := equivalenceRunOpts(t, Options{Trace: true})

	s, err := NewSession(equivalenceConfig(t, Options{Trace: true}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Abort != AbortDrained {
		t.Errorf("session run aborted with %v, want drained", res.Abort)
	}
	trace, csv := dumpRun(t, res)
	if trace != refTrace {
		t.Errorf("session trace diverges from Run(cfg):\n%s", firstDiff(refTrace, trace))
	}
	if !bytes.Equal(csv, refCSV) {
		t.Errorf("session jobs CSV diverges from Run(cfg)")
	}
	if rs, ss := fmt.Sprintf("%+v", ref.Summary), fmt.Sprintf("%+v", res.Summary); rs != ss {
		t.Errorf("summaries diverge:\nRun:     %s\nSession: %s", rs, ss)
	}
	if ref.Events != res.Events || ref.Invocations != res.Invocations || ref.Solves != res.Solves {
		t.Errorf("counters diverge: Run events=%d inv=%d solves=%d, Session events=%d inv=%d solves=%d",
			ref.Events, ref.Invocations, ref.Solves, res.Events, res.Invocations, res.Solves)
	}

	// Run on a completed session returns the cached result, not an error.
	again, err := s.Run(context.Background())
	if err != nil || again != res {
		t.Errorf("second Run = (%p, %v), want cached (%p, nil)", again, err, res)
	}
}

// TestSessionSlicedExecutionEquivalence pins that execution slicing is
// invisible: driving the same simulation by Step batches or by RunUntil
// increments yields results bit-identical to one uninterrupted Run.
func TestSessionSlicedExecutionEquivalence(t *testing.T) {
	_, refTrace, refCSV := equivalenceRunOpts(t, Options{Trace: true})

	t.Run("step", func(t *testing.T) {
		s, err := NewSession(equivalenceConfig(t, Options{Trace: true}))
		if err != nil {
			t.Fatal(err)
		}
		// A deliberately awkward batch size so slices land mid-cascade.
		for {
			n, err := s.Step(97)
			if err != nil {
				t.Fatal(err)
			}
			if n == 0 {
				break
			}
		}
		res, err := s.Result()
		if err != nil {
			t.Fatal(err)
		}
		if res.Abort != AbortDrained {
			t.Errorf("stepped session aborted with %v, want drained", res.Abort)
		}
		trace, csv := dumpRun(t, res)
		if trace != refTrace {
			t.Errorf("stepped trace diverges:\n%s", firstDiff(refTrace, trace))
		}
		if !bytes.Equal(csv, refCSV) {
			t.Errorf("stepped jobs CSV diverges")
		}
	})

	t.Run("rununtil", func(t *testing.T) {
		s, err := NewSession(equivalenceConfig(t, Options{Trace: true}))
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		for bound := 333.0; ; bound += 333.0 {
			reason, err := s.RunUntil(ctx, bound)
			if err != nil {
				t.Fatal(err)
			}
			if reason == AbortDrained {
				break
			}
			if reason != AbortHorizon {
				t.Fatalf("RunUntil(%g) = %v, want horizon or drained", bound, reason)
			}
			if now := s.Now(); now != bound {
				t.Fatalf("after RunUntil(%g) clock is %g", bound, now)
			}
		}
		res, err := s.Result()
		if err != nil {
			t.Fatal(err)
		}
		trace, csv := dumpRun(t, res)
		if trace != refTrace {
			t.Errorf("RunUntil trace diverges:\n%s", firstDiff(refTrace, trace))
		}
		if !bytes.Equal(csv, refCSV) {
			t.Errorf("RunUntil jobs CSV diverges")
		}
	})
}

// TestSessionCancellation pins the cancellation contract: a cancelled Run
// returns the partial metrics accumulated so far plus ctx.Err(), and the
// session resumes to a result bit-identical to an uninterrupted run.
func TestSessionCancellation(t *testing.T) {
	ref, refTrace, refCSV := equivalenceRunOpts(t, Options{Trace: true})

	s, err := NewSession(equivalenceConfig(t, Options{Trace: true}))
	if err != nil {
		t.Fatal(err)
	}
	// Advance deterministically into the middle of the simulation, then
	// ask for a full run under an already-cancelled context.
	if _, err := s.Step(int(ref.Events / 2)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	partial, err := s.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Run error = %v, want context.Canceled", err)
	}
	if partial == nil {
		t.Fatal("cancelled Run returned no partial result")
	}
	if partial.Abort != AbortCancelled {
		t.Errorf("partial.Abort = %v, want cancelled", partial.Abort)
	}
	if partial.Events == 0 || partial.Events >= ref.Events {
		t.Errorf("partial events = %d, want in (0, %d)", partial.Events, ref.Events)
	}
	finished := 0
	for _, r := range partial.Records {
		if r.End >= 0 {
			finished++
		}
	}
	if finished >= len(ref.Records) {
		t.Errorf("partial run finished all %d jobs; cancellation was not mid-run", finished)
	}

	// Deadline expiry maps to AbortDeadline.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	partial2, err := s.Run(dctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline Run error = %v, want context.DeadlineExceeded", err)
	}
	if partial2.Abort != AbortDeadline {
		t.Errorf("partial2.Abort = %v, want deadline", partial2.Abort)
	}

	// Resume to completion: byte-identical to the uninterrupted run.
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	trace, csv := dumpRun(t, res)
	if trace != refTrace {
		t.Errorf("resumed trace diverges:\n%s", firstDiff(refTrace, trace))
	}
	if !bytes.Equal(csv, refCSV) {
		t.Errorf("resumed jobs CSV diverges")
	}
}

// TestSessionPeek exercises the live snapshot across the lifecycle.
func TestSessionPeek(t *testing.T) {
	s, err := NewSession(equivalenceConfig(t, Options{}))
	if err != nil {
		t.Fatal(err)
	}
	p := s.Peek()
	if p.Events != 0 || p.Done || p.Completed != 0 {
		t.Errorf("pre-run peek = %+v, want zeroed and not done", p)
	}
	if p.Total != 60 {
		t.Errorf("peek total = %d, want 60", p.Total)
	}
	if reason, err := s.RunUntil(context.Background(), 2000); err != nil || reason != AbortHorizon {
		t.Fatalf("RunUntil = (%v, %v), want (horizon, nil)", reason, err)
	}
	p = s.Peek()
	if p.Now != 2000 {
		t.Errorf("mid-run peek now = %g, want 2000", p.Now)
	}
	if p.Events == 0 || p.Done {
		t.Errorf("mid-run peek = %+v, want progress and not done", p)
	}
	if p.Queued+p.Running == 0 && p.Completed == 0 {
		t.Errorf("mid-run peek shows no jobs anywhere: %+v", p)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	p = s.Peek()
	if !p.Done || p.Completed != p.Total {
		t.Errorf("post-run peek = %+v, want done with all jobs completed", p)
	}
	if p.Events != res.Events {
		t.Errorf("post-run peek events = %d, result says %d", p.Events, res.Events)
	}
}

// panicAlgo trips an artificial engine-invariant panic on the first
// scheduler invocation.
type panicAlgo struct{}

func (panicAlgo) Name() string { return "panic" }
func (panicAlgo) Schedule(inv *Invocation) []Decision {
	panic("scheduler invariant violated (test)")
}

// TestSessionInternalError pins panic recovery at the API boundary: an
// internal panic surfaces as *InternalError with context attached, never
// as a crash, and poisons the session.
func TestSessionInternalError(t *testing.T) {
	cfg := equivalenceConfig(t, Options{})
	cfg.Algorithm = panicAlgo{}
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Run(context.Background())
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("Run error = %v (%T), want *InternalError", err, err)
	}
	if ie.Msg != "scheduler invariant violated (test)" {
		t.Errorf("InternalError.Msg = %q", ie.Msg)
	}
	if len(ie.Stack) == 0 {
		t.Error("InternalError carries no stack")
	}
	// Poisoned: every subsequent call returns the same error.
	if _, err := s.Step(1); !errors.As(err, &ie) {
		t.Errorf("Step after internal error = %v, want poisoned", err)
	}
	if _, err := s.Result(); !errors.As(err, &ie) {
		t.Errorf("Result after internal error = %v, want poisoned", err)
	}
	if _, err := s.Run(context.Background()); !errors.As(err, &ie) {
		t.Errorf("Run after internal error = %v, want poisoned", err)
	}

	// Run(cfg) inherits the recovery: error, not crash.
	if _, err := Run(cfg); err == nil {
		t.Error("Run with panicking algorithm returned nil error")
	}
}

// TestConcurrentSessions is the -race stress pin for the shared-state
// audit: many independent sessions with mixed workloads running
// concurrently must neither race nor perturb each other's determinism.
func TestConcurrentSessions(t *testing.T) {
	const sessions = 8
	algos := []func() Algorithm{NewAdaptive, NewEASY, NewFCFS, NewFairShare}

	// Reference results, computed sequentially.
	refs := make([]*Result, sessions)
	for i := 0; i < sessions; i++ {
		res, err := Run(concurrentConfig(t, i, algos[i%len(algos)]()))
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = res
	}

	results := make([]*Result, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := NewSession(concurrentConfig(t, i, algos[i%len(algos)]()))
			if err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = s.Run(context.Background())
		}(i)
	}
	wg.Wait()
	for i := 0; i < sessions; i++ {
		if errs[i] != nil {
			t.Fatalf("session %d: %v", i, errs[i])
		}
		if got, want := fmt.Sprintf("%+v", results[i].Summary), fmt.Sprintf("%+v", refs[i].Summary); got != want {
			t.Errorf("session %d summary diverges under concurrency:\nseq:  %s\nconc: %s", i, want, got)
		}
		if results[i].Events != refs[i].Events {
			t.Errorf("session %d events = %d concurrent vs %d sequential", i, results[i].Events, refs[i].Events)
		}
	}
}

// concurrentConfig builds session i's scenario: distinct seeds, sizes,
// and failure models so concurrent sessions exercise different paths.
func concurrentConfig(t *testing.T, i int, algo Algorithm) Config {
	t.Helper()
	wl, err := GenerateWorkload(WorkloadConfig{
		Seed:  uint64(100 + i),
		Count: 25,
		Arrival: job.Arrival{
			Kind: job.ArrivalPoisson, Rate: 0.05,
		},
		Nodes:        [2]int{1, 8},
		MachineNodes: 16,
		NodeSpeed:    100e9,
		TypeShares: map[job.Type]float64{
			job.Rigid: 0.4, job.Moldable: 0.2, job.Malleable: 0.3, job.Evolving: 0.1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Platform:  HomogeneousPlatform(fmt.Sprintf("c%d", i), 16, 100e9, 10e9, 40e9, 40e9),
		Workload:  wl,
		Algorithm: algo,
		Options:   Options{Trace: true},
	}
	if i%2 == 0 {
		cfg.Failures = &FailureSpec{Model: FailureExponential, Seed: uint64(i + 1), MTBF: 30000, MTTR: 200}
	}
	return cfg
}
