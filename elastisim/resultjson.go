package elastisim

import (
	"encoding/json"
	"fmt"
	"io"
)

// resultDoc is the canonical JSON form of a Result: every deterministic
// field of the run, and nothing machine-dependent. Wall-clock time and the
// self-profiling snapshot are deliberately excluded so that two runs of the
// same configuration — on different machines, through different drivers
// (one-shot CLI, stepped session, elastisimd worker) — produce byte-
// identical documents. The daemon's end-to-end test pins exactly that.
type resultDoc struct {
	Summary          Summary      `json:"summary"`
	Records          []*JobRecord `json:"records"`
	Invocations      uint64       `json:"invocations"`
	Decisions        uint64       `json:"decisions"`
	Events           uint64       `json:"events"`
	Solves           uint64       `json:"solves"`
	SolvedActivities uint64       `json:"solved_activities"`
	Warnings         []string     `json:"warnings,omitempty"`
	Abort            string       `json:"abort"`
}

// WriteJSON writes the canonical, deterministic JSON document of the
// result: summary, per-job records, scheduler and simulator counters, and
// the abort reason. Machine-dependent measurements (wall clock, profiling
// snapshot) are excluded, so identical simulations yield identical bytes
// regardless of host or driver.
func (r *Result) WriteJSON(w io.Writer) error {
	doc := resultDoc{
		Summary:          r.Summary,
		Records:          r.Records,
		Invocations:      r.Invocations,
		Decisions:        r.Decisions,
		Events:           r.Events,
		Solves:           r.Solves,
		SolvedActivities: r.SolvedActivities,
		Warnings:         r.Warnings,
		Abort:            r.Abort.String(),
	}
	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// UnmarshalResultSummary decodes the summary and counters back out of a
// canonical result document (the inverse of WriteJSON for the aggregate
// fields; per-job records are returned as-is).
func UnmarshalResultSummary(data []byte) (Summary, []*JobRecord, error) {
	var doc resultDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return Summary{}, nil, fmt.Errorf("elastisim: decoding result: %w", err)
	}
	return doc.Summary, doc.Records, nil
}
