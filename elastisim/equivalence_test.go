package elastisim

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/job"
)

// equivalenceRun executes one fixed-seed simulation of a mixed
// rigid/moldable/malleable/evolving workload with checkpointing and node
// failures — every code path that starts, cancels, grows, shrinks, or
// kills fluid activities — and returns the result plus byte-exact dumps
// of the trace and the per-job CSV. Trace times are formatted with %b
// (exact binary float), so even a one-ulp divergence between solver
// modes fails the comparison.
func equivalenceRun(t *testing.T, forceFull bool) (*Result, string, []byte) {
	t.Helper()
	return equivalenceRunOpts(t, Options{Trace: true, ForceFullSolve: forceFull})
}

// equivalenceRunOpts is equivalenceRun with caller-chosen engine options
// (the telemetry tests attach sinks to the same scenario).
func equivalenceRunOpts(t *testing.T, opts Options) (*Result, string, []byte) {
	t.Helper()
	res, err := Run(equivalenceConfig(t, opts))
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.NodeFailures == 0 {
		t.Fatal("scenario injected no failures; the test is vacuous")
	}
	trace, csv := dumpRun(t, res)
	return res, trace, csv
}

// equivalenceConfig builds the shared mixed-workload-with-failures
// scenario; the session lifecycle tests drive the same config through
// NewSession/Run/RunUntil/Step and compare against Run(cfg) byte for byte.
func equivalenceConfig(t *testing.T, opts Options) Config {
	t.Helper()
	wl, err := GenerateWorkload(WorkloadConfig{
		Seed: 11, Count: 60,
		Arrival:            job.Arrival{Kind: job.ArrivalPoisson, Rate: 0.05},
		Nodes:              [2]int{1, 16},
		MachineNodes:       32,
		NodeSpeed:          100e9,
		TypeShares:         map[job.Type]float64{job.Rigid: 0.4, job.Moldable: 0.2, job.Malleable: 0.3, job.Evolving: 0.1},
		CheckpointInterval: "120",
	})
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Platform:  HomogeneousPlatform("eq", 32, 100e9, 10e9, 40e9, 40e9),
		Workload:  wl,
		Algorithm: NewAdaptive(),
		Failures: &FailureSpec{
			Model: FailureExponential, Seed: 5,
			MTBF: 20000, MTTR: 300,
		},
		Options: opts,
	}
}

// dumpRun renders a result's trace (%b exact binary floats) and per-job
// CSV for byte-exact comparison.
func dumpRun(t *testing.T, res *Result) (string, []byte) {
	t.Helper()
	var trace strings.Builder
	for _, ev := range res.Trace {
		subject := fmt.Sprintf("job%d", ev.Job)
		if ev.Job == NoJob {
			subject = fmt.Sprintf("node%d", ev.Node)
		}
		fmt.Fprintf(&trace, "%b %s %s %s\n", ev.T, ev.Kind, subject, ev.Detail)
	}
	var csv bytes.Buffer
	if err := res.Recorder.WriteJobsCSV(&csv); err != nil {
		t.Fatal(err)
	}
	return trace.String(), csv.Bytes()
}

// TestIncrementalSolverEquivalence pins the central refactoring invariant:
// the incremental, component-partitioned fluid solver must reproduce the
// full-recompute baseline (Options.ForceFullSolve) bit for bit — same
// trace at exact float precision, same CSV, same summary — while actually
// re-solving strictly fewer activities.
func TestIncrementalSolverEquivalence(t *testing.T) {
	full, fullTrace, fullCSV := equivalenceRun(t, true)
	inc, incTrace, incCSV := equivalenceRun(t, false)

	if fullTrace != incTrace {
		t.Errorf("traces diverge between full and incremental solving:\n%s", firstDiff(fullTrace, incTrace))
	}
	if !bytes.Equal(fullCSV, incCSV) {
		t.Errorf("jobs CSV diverges between full and incremental solving")
	}
	if fs, is := fmt.Sprintf("%+v", full.Summary), fmt.Sprintf("%+v", inc.Summary); fs != is {
		t.Errorf("summaries diverge:\nfull: %s\nincr: %s", fs, is)
	}
	if full.Solves != inc.Solves {
		t.Errorf("solver invocation count diverges: full %d, incremental %d", full.Solves, inc.Solves)
	}
	// The whole point of partitioning: the incremental path must touch
	// strictly fewer activities than re-solving every component each time.
	if inc.SolvedActivities >= full.SolvedActivities {
		t.Errorf("incremental solver re-solved %d activities, full recompute %d — no work saved",
			inc.SolvedActivities, full.SolvedActivities)
	}
}

// firstDiff locates the first differing line of two multi-line strings.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  full: %s\n  incr: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}
