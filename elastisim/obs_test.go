package elastisim

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/obs"
)

// scrape renders the registry's exposition text for assertions.
func scrape(t *testing.T, reg *MetricsRegistry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return buf.String()
}

// TestObsDoesNotChangeOutputs pins the registry's zero-interference
// contract, in the same spirit as the nil-Tracer telemetry pin: running
// the shared mixed-workload-with-failures scenario with a metrics
// registry and flight recorder attached must produce byte-identical
// outputs — exact-float trace, jobs CSV, summary — to the bare run. The
// obs layer only ever reads counters the run already maintains.
func TestObsDoesNotChangeOutputs(t *testing.T) {
	_, bareTrace, bareCSV := equivalenceRun(t, false)

	cfg := equivalenceConfig(t, Options{Trace: true})
	cfg.Metrics = NewMetricsRegistry()
	cfg.Flight = NewFlightRecorder(128)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	obsTrace, obsCSV := dumpRun(t, res)

	if bareTrace != obsTrace {
		t.Errorf("trace diverges with obs attached:\n%s", firstDiff(bareTrace, obsTrace))
	}
	if !bytes.Equal(bareCSV, obsCSV) {
		t.Errorf("jobs CSV diverges with obs attached")
	}

	// The registry must reflect the run it observed.
	text := scrape(t, cfg.Metrics)
	for _, want := range []string{
		"elastisim_sessions_started_total 1",
		`elastisim_sessions_finished_total{reason="drained"} 1`,
		fmt.Sprintf("elastisim_sim_events_total %d", res.Events),
		fmt.Sprintf("elastisim_sim_invocations_total %d", res.Invocations),
		fmt.Sprintf("elastisim_sim_decisions_total %d", res.Decisions),
		fmt.Sprintf("elastisim_sim_jobs_total %d", len(res.Records)),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if _, err := obs.ValidateExposition(strings.NewReader(text)); err != nil {
		t.Errorf("session exposition invalid: %v", err)
	}
	if cfg.Flight.Total() < 2 {
		t.Errorf("flight recorded %d entries, want create + finish", cfg.Flight.Total())
	}
}

// TestObsSessionPanic pins the crash path: an engine panic increments the
// panics counter, lands in the flight ring with the panic message, and the
// recorder dumps a readable postmortem quoting it.
func TestObsSessionPanic(t *testing.T) {
	cfg := equivalenceConfig(t, Options{})
	cfg.Algorithm = panicAlgo{}
	cfg.Metrics = NewMetricsRegistry()
	cfg.Flight = NewFlightRecorder(64)
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Run(context.Background())
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("Run error = %v (%T), want *InternalError", err, err)
	}

	if got := scrape(t, cfg.Metrics); !strings.Contains(got, "elastisim_session_panics_total 1") {
		t.Errorf("panics counter not incremented:\n%s", got)
	}
	var panicEntry *obs.FlightEntry
	for _, e := range cfg.Flight.Snapshot() {
		if e.Cat == "panic" {
			panicEntry = &e
			break
		}
	}
	if panicEntry == nil {
		t.Fatal("no panic entry in flight ring")
	}
	if !strings.Contains(panicEntry.Msg, "scheduler invariant violated (test)") {
		t.Errorf("panic flight entry does not quote the panic: %q", panicEntry.Msg)
	}

	var buf bytes.Buffer
	if err := cfg.Flight.WritePostmortem(&buf, "panic", ie.Error(), cfg.Metrics); err != nil {
		t.Fatalf("WritePostmortem: %v", err)
	}
	var pm obs.Postmortem
	if err := json.Unmarshal(buf.Bytes(), &pm); err != nil {
		t.Fatalf("postmortem is not valid JSON: %v", err)
	}
	if pm.Reason != "panic" || !strings.Contains(pm.Detail, "scheduler invariant violated") {
		t.Errorf("postmortem header = %q/%q", pm.Reason, pm.Detail)
	}
	if len(pm.Entries) == 0 {
		t.Error("postmortem carries no flight entries")
	}
	if !strings.Contains(pm.Metrics, "elastisim_session_panics_total 1") {
		t.Error("postmortem metrics snapshot missing the panic counter")
	}
}

// TestObsAbortAndResume pins the resumable-session accounting: each
// cancelled run slice counts one abort, and the eventual completion still
// counts exactly one finished session.
func TestObsAbortAndResume(t *testing.T) {
	cfg := equivalenceConfig(t, Options{})
	cfg.Metrics = NewMetricsRegistry()
	cfg.Flight = NewFlightRecorder(64)
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := s.Run(ctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled Run %d error = %v", i, err)
		}
	}
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// A second Result() must not double-count the finish.
	if _, err := s.Result(); err != nil {
		t.Fatal(err)
	}
	text := scrape(t, cfg.Metrics)
	for _, want := range []string{
		`elastisim_session_aborts_total{reason="cancelled"} 2`,
		`elastisim_sessions_finished_total{reason="drained"} 1`,
		"elastisim_sessions_started_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}
