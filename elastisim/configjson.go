package elastisim

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/fluid"
	"repro/internal/job"
	"repro/internal/platform"
)

// This file defines the combined simulation document: one JSON object
// carrying the platform, the workload, the algorithm, and the engine
// options. It is the wire format of the elastisimd daemon (POST
// /v1/sessions) and the -config flag of the elastisim CLI, and it is
// round-trip safe: ParseConfig(MarshalConfig(cfg)) yields a configuration
// with identical semantics (pinned by TestConfigRoundTrip).

// configDoc is the serialized form of a Config.
type configDoc struct {
	// Platform is the platform spec (same schema as a platform file).
	Platform json.RawMessage `json:"platform"`
	// Workload is the workload (same schema as a workload file).
	Workload json.RawMessage `json:"workload"`
	// Algorithm names a built-in algorithm (default "adaptive").
	Algorithm string `json:"algorithm,omitempty"`
	// Failures overrides the platform spec's failure model.
	Failures *FailureSpec `json:"failures,omitempty"`
	// Options tunes the engine.
	Options *configOptions `json:"options,omitempty"`
}

// configOptions is the serializable subset of Options: everything that
// affects simulation semantics. Host-side attachments (telemetry sinks,
// progress tickers, profiling) are deliberately absent — they are wired by
// the process running the simulation, not by the document describing it.
type configOptions struct {
	InvocationInterval Quantity `json:"invocation_interval,omitempty"`
	DisableEventDriven bool     `json:"disable_event_driven,omitempty"`
	// Fairness is "max-min" (default) or "equal-split".
	Fairness string `json:"fairness,omitempty"`
	Trace    bool   `json:"trace,omitempty"`
	// TraceTasks implies per-task log volume; it requires Trace (or a
	// telemetry tracer) to have any effect, exactly as in Options.
	TraceTasks      bool     `json:"trace_tasks,omitempty"`
	Horizon         Quantity `json:"horizon,omitempty"`
	DisableFastPath bool     `json:"disable_fast_path,omitempty"`
	ForceFullSolve  bool     `json:"force_full_solve,omitempty"`
	ForceHeapQueue  bool     `json:"force_heap_queue,omitempty"`
}

// fairnessNames maps the serialized fairness policy names to fluid values.
var fairnessNames = map[string]fluid.Fairness{
	"max-min":     fluid.MaxMin,
	"equal-split": fluid.EqualSplit,
}

// ParseConfig decodes and fully validates a combined simulation document:
// platform, workload (validated against the platform's machine size),
// algorithm by built-in name, optional failure override, and engine
// options. Unknown top-level fields are an error, so a typo cannot
// silently turn into a default.
func ParseConfig(data []byte) (Config, error) {
	var doc configDoc
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return Config{}, fmt.Errorf("elastisim: decoding config: %w", err)
	}
	if len(doc.Platform) == 0 {
		return Config{}, fmt.Errorf("elastisim: config needs a \"platform\" object")
	}
	if len(doc.Workload) == 0 {
		return Config{}, fmt.Errorf("elastisim: config needs a \"workload\" object")
	}
	spec, err := platform.ParseSpec(doc.Platform)
	if err != nil {
		return Config{}, err
	}
	wl, err := job.ParseWorkload(doc.Workload, spec.TotalNodes())
	if err != nil {
		return Config{}, err
	}
	name := doc.Algorithm
	if name == "" {
		name = "adaptive"
	}
	algo, err := NewAlgorithm(name)
	if err != nil {
		return Config{}, err
	}
	cfg := Config{Platform: spec, Workload: wl, Algorithm: algo, Failures: doc.Failures}
	if doc.Failures != nil {
		if err := doc.Failures.Validate(); err != nil {
			return Config{}, fmt.Errorf("elastisim: config failures: %w", err)
		}
	}
	if o := doc.Options; o != nil {
		if o.InvocationInterval < 0 {
			return Config{}, fmt.Errorf("elastisim: config options: negative invocation_interval")
		}
		if o.Horizon < 0 {
			return Config{}, fmt.Errorf("elastisim: config options: negative horizon")
		}
		cfg.Options = Options{
			InvocationInterval: float64(o.InvocationInterval),
			DisableEventDriven: o.DisableEventDriven,
			Trace:              o.Trace,
			TraceTasks:         o.TraceTasks,
			Horizon:            float64(o.Horizon),
			DisableFastPath:    o.DisableFastPath,
			ForceFullSolve:     o.ForceFullSolve,
			ForceHeapQueue:     o.ForceHeapQueue,
		}
		if o.Fairness != "" {
			f, ok := fairnessNames[o.Fairness]
			if !ok {
				return Config{}, fmt.Errorf("elastisim: config options: unknown fairness %q (have max-min, equal-split)", o.Fairness)
			}
			cfg.Options.Fairness = f
		}
	}
	return cfg, nil
}

// algorithmKey reverses an Algorithm back to its NewAlgorithm name. The
// display name and the factory key differ for composed algorithms (the
// "packed" factory builds an algorithm named "packed+easy"), so the lookup
// instantiates every factory and matches on the display name.
func algorithmKey(a Algorithm) (string, error) {
	if a == nil {
		return "", fmt.Errorf("elastisim: config has no algorithm")
	}
	name := a.Name()
	for key, f := range algorithmFactories {
		if f().Name() == name {
			return key, nil
		}
	}
	return "", fmt.Errorf("elastisim: algorithm %q is not a built-in and cannot be serialized", name)
}

// MarshalConfig serializes a Config into the combined document form.
// Custom (non-built-in) algorithms cannot be serialized and return an
// error; host-side attachments in Options (telemetry, progress) are not
// part of the document and are ignored.
func MarshalConfig(cfg Config) ([]byte, error) {
	if cfg.Platform == nil || cfg.Workload == nil {
		return nil, fmt.Errorf("elastisim: config needs a platform and a workload")
	}
	key, err := algorithmKey(cfg.Algorithm)
	if err != nil {
		return nil, err
	}
	plat, err := json.Marshal(cfg.Platform)
	if err != nil {
		return nil, err
	}
	wl, err := json.Marshal(cfg.Workload)
	if err != nil {
		return nil, err
	}
	doc := configDoc{Platform: plat, Workload: wl, Algorithm: key, Failures: cfg.Failures}
	o := cfg.Options
	if doc.Failures == nil && o.Failures != nil {
		// NewSession honors a failure spec planted directly in Options;
		// serialize it rather than silently dropping it.
		doc.Failures = o.Failures
	}
	co := configOptions{
		InvocationInterval: Quantity(o.InvocationInterval),
		DisableEventDriven: o.DisableEventDriven,
		Trace:              o.Trace,
		TraceTasks:         o.TraceTasks,
		Horizon:            Quantity(o.Horizon),
		DisableFastPath:    o.DisableFastPath,
		ForceFullSolve:     o.ForceFullSolve,
		ForceHeapQueue:     o.ForceHeapQueue,
	}
	if o.Fairness != fluid.MaxMin {
		co.Fairness = o.Fairness.String()
	}
	if co != (configOptions{}) {
		doc.Options = &co
	}
	return json.MarshalIndent(&doc, "", "  ")
}
