package elastisim_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/elastisim"
	"repro/internal/job"
)

// Example demonstrates the minimal end-to-end flow: build a platform,
// describe one job, run, and read the summary.
func Example() {
	platform := elastisim.HomogeneousPlatform("demo", 8, 1e9, 1e9, 2e9, 2e9)
	solver := &elastisim.Job{
		Name: "solver", Type: elastisim.Rigid, NumNodes: 4,
		Args: map[string]float64{"flops": 1e12},
		App: &elastisim.Application{Phases: []elastisim.Phase{{
			Tasks: []elastisim.Task{{
				Kind:  job.TaskCompute,
				Model: job.MustExprModel("flops / num_nodes"),
			}},
		}}},
	}
	workload := &elastisim.Workload{Jobs: []*elastisim.Job{solver}}
	workload.Sort()

	result, err := elastisim.Run(elastisim.Config{
		Platform:  platform,
		Workload:  workload,
		Algorithm: elastisim.NewFCFS(),
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("makespan %.0f s, utilization %.0f%%\n",
		result.Summary.Makespan, result.Summary.Utilization*100)
	// Output: makespan 250 s, utilization 50%
}

// ExampleEstimateRuntime shows the analytic estimator agreeing with the
// simulation for an uncontended job.
func ExampleEstimateRuntime() {
	j := &elastisim.Job{
		Name: "j", Type: elastisim.Moldable, NumNodesMin: 1, NumNodesMax: 16, NumNodes: 4,
		Args: map[string]float64{"flops": 1e12},
		App: &elastisim.Application{Phases: []elastisim.Phase{{
			Tasks: []elastisim.Task{{
				Kind:  job.TaskCompute,
				Model: job.MustExprModel("flops / num_nodes"),
			}},
		}}},
	}
	ref := elastisim.PlatformRef{NodeSpeed: 1e9, LinkBW: 1e9, PFSReadBW: 2e9, PFSWriteBW: 2e9}
	for _, n := range []int{1, 4, 16} {
		est, _ := elastisim.EstimateRuntime(j, n, ref)
		fmt.Printf("%2d nodes: %.1f s\n", n, est)
	}
	// Output:
	//  1 nodes: 1000.0 s
	//  4 nodes: 250.0 s
	// 16 nodes: 62.5 s
}

func TestResultSVGWriters(t *testing.T) {
	platform := elastisim.HomogeneousPlatform("x", 8, 1e9, 1e9, 2e9, 2e9)
	wl, err := elastisim.GenerateWorkload(elastisim.WorkloadConfig{
		Seed: 1, Count: 10,
		Arrival:      job.Arrival{Kind: job.ArrivalPoisson, Rate: 0.1},
		Nodes:        [2]int{1, 4},
		MachineNodes: 8,
		NodeSpeed:    1e9,
		TypeShares:   map[job.Type]float64{job.Malleable: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := elastisim.Run(elastisim.Config{
		Platform: platform, Workload: wl, Algorithm: elastisim.NewAdaptive(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var gantt, util bytes.Buffer
	if err := res.WriteGanttSVG(&gantt, "gantt"); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteUtilizationSVG(&util, "util"); err != nil {
		t.Fatal(err)
	}
	for name, buf := range map[string]*bytes.Buffer{"gantt": &gantt, "util": &util} {
		s := buf.String()
		if !strings.HasPrefix(s, "<svg") || !strings.Contains(s, "</svg>") {
			t.Errorf("%s output is not SVG", name)
		}
	}
}

// The JSON files shipped under examples/data must stay loadable and
// simulate cleanly — they are the CLI quickstart.
func TestShippedDataFiles(t *testing.T) {
	spec, err := elastisim.LoadPlatform("../examples/data/platform.json")
	if err != nil {
		t.Fatalf("shipped platform invalid: %v", err)
	}
	wl, err := elastisim.LoadWorkload("../examples/data/workload.json", spec.TotalNodes())
	if err != nil {
		t.Fatalf("shipped workload invalid: %v", err)
	}
	res, err := elastisim.Run(elastisim.Config{
		Platform: spec, Workload: wl, Algorithm: elastisim.NewAdaptive(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Completed != len(wl.Jobs) {
		t.Errorf("completed %d/%d", res.Summary.Completed, len(wl.Jobs))
	}
	if res.Summary.Reconfigs == 0 {
		t.Error("demo workload should exercise reconfiguration")
	}
}
