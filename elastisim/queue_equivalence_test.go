package elastisim

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/job"
)

// queueDump runs cfg and returns the byte-exact artifacts the ladder/heap
// comparison pins: the %b-formatted trace, the per-job CSV, and the
// canonical Result JSON document.
func queueDump(t *testing.T, cfg Config) (string, []byte, []byte) {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	trace, csv := dumpRun(t, res)
	var doc bytes.Buffer
	if err := res.WriteJSON(&doc); err != nil {
		t.Fatal(err)
	}
	return trace, csv, doc.Bytes()
}

// periodicQueueConfig exercises the batched-invocation regime the ladder
// queue was built for: periodic-only scheduling over a rigid/moldable mix,
// no event-driven invocations.
func periodicQueueConfig(t *testing.T, opts Options) Config {
	t.Helper()
	wl, err := GenerateWorkload(WorkloadConfig{
		Seed: 23, Count: 150,
		Arrival:      job.Arrival{Kind: job.ArrivalPoisson, Rate: 0.2},
		Nodes:        [2]int{1, 8},
		MachineNodes: 24,
		NodeSpeed:    100e9,
		TypeShares:   map[job.Type]float64{job.Rigid: 0.7, job.Moldable: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	opts.InvocationInterval = 45
	opts.DisableEventDriven = true
	alg, err := NewAlgorithm("firstfit")
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Platform:  HomogeneousPlatform("eq", 24, 100e9, 10e9, 40e9, 40e9),
		Workload:  wl,
		Algorithm: alg,
		Options:   opts,
	}
}

// depsQueueConfig exercises dependency holds and the chained submission
// events: jobs arrive in ties at identical timestamps and release
// dependents on completion.
func depsQueueConfig(t *testing.T, opts Options) Config {
	t.Helper()
	app := &job.Application{Phases: []job.Phase{{Tasks: []job.Task{
		{Kind: job.TaskCompute, Model: job.MustExprModel("2e11 * num_nodes")},
	}}}}
	var js []*job.Job
	for i := 0; i < 24; i++ {
		j := &job.Job{
			ID:         job.ID(i),
			Name:       fmt.Sprintf("dep%d", i),
			Type:       job.Rigid,
			SubmitTime: float64(i % 3),
			NumNodes:   1 + i%4,
			App:        app,
		}
		if i >= 4 {
			j.Dependencies = []job.ID{job.ID(i - 4)}
		}
		js = append(js, j)
	}
	wl := &Workload{Name: "deps", Jobs: js}
	wl.Sort()
	alg, err := NewAlgorithm("fcfs")
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Platform:  HomogeneousPlatform("eq", 16, 100e9, 10e9, 40e9, 40e9),
		Workload:  wl,
		Algorithm: alg,
		Options:   opts,
	}
}

// TestLadderHeapQueueEquivalence pins the event-queue refactoring
// invariant: the calendar/ladder queue must reproduce the binary-heap
// reference (Options.ForceHeapQueue) bit for bit — identical trace at
// exact float precision, identical per-job CSV, identical canonical
// Result JSON — across scenarios covering failures, malleability,
// evolving requests, periodic-only batched invocations, and dependency
// chains with tied timestamps.
func TestLadderHeapQueueEquivalence(t *testing.T) {
	scenarios := []struct {
		name string
		cfg  func(*testing.T, Options) Config
	}{
		{"failures-adaptive", equivalenceConfig},
		{"periodic-batch", periodicQueueConfig},
		{"deps-ties", depsQueueConfig},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			ladTrace, ladCSV, ladJSON := queueDump(t, sc.cfg(t, Options{Trace: true}))
			heapTrace, heapCSV, heapJSON := queueDump(t, sc.cfg(t, Options{Trace: true, ForceHeapQueue: true}))
			if ladTrace != heapTrace {
				t.Errorf("traces diverge between ladder and heap queues:\n%s", firstDiff(heapTrace, ladTrace))
			}
			if !bytes.Equal(ladCSV, heapCSV) {
				t.Errorf("jobs CSV diverges between ladder and heap queues")
			}
			if !bytes.Equal(ladJSON, heapJSON) {
				t.Errorf("result JSON diverges between ladder and heap queues:\n%s",
					firstDiff(string(heapJSON), string(ladJSON)))
			}
		})
	}
}
