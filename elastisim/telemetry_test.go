package elastisim

import (
	"bytes"
	"testing"

	"repro/internal/job"
	"repro/internal/telemetry"
)

// telemetryRun repeats the equivalence scenario with a full telemetry
// stack attached: Chrome + JSONL sinks and the scheduler audit log.
func telemetryRun(t *testing.T) (*Result, string, []byte, *bytes.Buffer, *bytes.Buffer, *bytes.Buffer) {
	t.Helper()
	var chrome, jsonl, audit bytes.Buffer
	tracer := NewTracer(NewChromeTraceSink(&chrome), NewJSONLTraceSink(&jsonl))
	auditLog := NewAuditLog(&audit)
	tracer.SetAudit(auditLog)

	res, trace, csv := equivalenceRunOpts(t, Options{
		Trace:     true,
		Telemetry: tracer,
	})
	if err := tracer.Close(); err != nil {
		t.Fatalf("closing tracer: %v", err)
	}
	if err := auditLog.Close(); err != nil {
		t.Fatalf("closing audit log: %v", err)
	}
	return res, trace, csv, &chrome, &jsonl, &audit
}

// TestTelemetryDoesNotChangeOutputs pins the zero-interference invariant:
// attaching the full telemetry stack must not move a single simulated
// byte. The trace is compared at exact float precision (%b), so even a
// one-ulp divergence fails.
func TestTelemetryDoesNotChangeOutputs(t *testing.T) {
	_, offTrace, offCSV := equivalenceRun(t, false)
	_, onTrace, onCSV, _, _, _ := telemetryRun(t)

	if offTrace != onTrace {
		t.Errorf("event log diverges with telemetry attached:\n%s", firstDiff(offTrace, onTrace))
	}
	if !bytes.Equal(offCSV, onCSV) {
		t.Errorf("jobs CSV diverges with telemetry attached")
	}
}

// TestChromeTraceCoversRun machine-validates the Chrome trace of the
// failure-heavy equivalence scenario: it parses, timestamps are
// non-decreasing per track, every span closes, and every job's lifetime
// [submit, end] is covered by its job track.
func TestChromeTraceCoversRun(t *testing.T) {
	res, _, _, chrome, _, _ := telemetryRun(t)

	stats, err := telemetry.ValidateChromeTrace(chrome.Bytes())
	if err != nil {
		t.Fatalf("invalid Chrome trace: %v", err)
	}
	if stats.Events == 0 {
		t.Fatal("empty trace")
	}
	for _, k := range stats.SortedTrackKeys() {
		if b := stats.Tracks[k]; b.OpenSpans != 0 {
			t.Errorf("track pid=%d tid=%d: %d spans left open", k.Pid, k.Tid, b.OpenSpans)
		}
	}
	// Every job's track must span its recorded lifetime (timestamps in µs).
	const us = 1e6
	for _, r := range res.Records {
		b := stats.Tracks[telemetry.JobTrackKey(int(r.ID))]
		if b == nil {
			t.Errorf("job %d: no trace track", r.ID)
			continue
		}
		if b.FirstTS > r.Submit*us+1 {
			t.Errorf("job %d: track starts at %.0f µs, submitted at %.0f µs", r.ID, b.FirstTS, r.Submit*us)
		}
		if r.End >= 0 && b.LastTS < r.End*us-1 {
			t.Errorf("job %d: track ends at %.0f µs, job ended at %.0f µs", r.ID, b.LastTS, r.End*us)
		}
		if b.Spans == 0 {
			t.Errorf("job %d: track has no spans", r.ID)
		}
	}
	// The failure scenario must surface outage spans on node tracks.
	nodeSpans := 0
	for _, k := range stats.SortedTrackKeys() {
		if k.Pid == 2 {
			nodeSpans += stats.Tracks[k].Spans
		}
	}
	if nodeSpans == 0 {
		t.Error("no spans on any node track despite failures and allocations")
	}
}

// TestJSONLSummaryMatchesRecords cross-checks the JSONL trace's per-job
// span summary against the recorder: total wait and run time per job must
// agree (the trace and the metrics derive from the same events).
func TestJSONLSummaryMatchesRecords(t *testing.T) {
	res, _, _, _, jsonl, _ := telemetryRun(t)

	events, err := telemetry.ReadJSONL(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	sums := telemetry.SummarizeJobSpans(events)
	byJob := map[int]telemetry.JobSpanSummary{}
	for _, s := range sums {
		byJob[s.Job] = s
	}
	for _, r := range res.Records {
		s, ok := byJob[int(r.ID)]
		if !ok {
			t.Errorf("job %d: missing from JSONL summary", r.ID)
			continue
		}
		// Jobs that never started have no run span; started jobs must.
		if r.Start >= 0 && s.Run <= 0 && r.End > r.Start {
			t.Errorf("job %d: started at %.1f but summary shows no run time", r.ID, r.Start)
		}
		if r.Start > r.Submit && s.Wait <= 0 {
			t.Errorf("job %d: waited %.1f s but summary shows no wait time", r.ID, r.Start-r.Submit)
		}
	}
}

// TestAuditLogRecordsDecisions checks the scheduler audit stream of the
// equivalence scenario: every invocation is recorded with queue state, and
// the applied-decision count matches the engine's.
func TestAuditLogRecordsDecisions(t *testing.T) {
	res, _, _, _, _, audit := telemetryRun(t)

	recs, err := telemetry.ReadAuditLog(audit)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(recs)) != res.Invocations {
		t.Fatalf("audit has %d records, engine ran %d invocations", len(recs), res.Invocations)
	}
	applied := uint64(0)
	for i, r := range recs {
		if r.Invocation != uint64(i+1) {
			t.Fatalf("record %d: invocation %d out of order", i, r.Invocation)
		}
		if r.QueueDepth < 0 || r.FreeNodes < 0 || r.FreeNodes > 32 {
			t.Errorf("record %d: implausible cluster state: %+v", i, r)
		}
		for _, d := range r.Decisions {
			if d.Applied {
				applied++
			} else if d.Reason == "" {
				t.Errorf("record %d: rejected decision without a reason", i)
			}
		}
	}
	if applied != res.Decisions {
		t.Errorf("audit shows %d applied decisions, engine applied %d", applied, res.Decisions)
	}
	if res.Telemetry.Scheduler.Invocations != res.Invocations {
		t.Errorf("snapshot invocations %d != engine invocations %d",
			res.Telemetry.Scheduler.Invocations, res.Invocations)
	}
}

// TestSnapshotIsPopulated checks the self-profiling artifact of a real run
// carries all counter groups.
func TestSnapshotIsPopulated(t *testing.T) {
	res, _, _ := equivalenceRun(t, false)
	s := res.Telemetry
	if s.Runs != 1 || s.Jobs != 60 {
		t.Errorf("runs/jobs: %d/%d", s.Runs, s.Jobs)
	}
	if s.Kernel.Scheduled == 0 || s.Kernel.Fired == 0 || s.Kernel.PeakQueue == 0 {
		t.Errorf("kernel counters empty: %+v", s.Kernel)
	}
	if s.Kernel.Fired > s.Kernel.Scheduled {
		t.Errorf("fired %d > scheduled %d", s.Kernel.Fired, s.Kernel.Scheduled)
	}
	if s.Solver.Solves == 0 {
		t.Errorf("solver counters empty: %+v", s.Solver)
	}
	if s.Scheduler.Invocations == 0 || s.Scheduler.Applied == 0 || len(s.Scheduler.ByKind) == 0 {
		t.Errorf("scheduler counters empty: %+v", s.Scheduler)
	}
	if s.Scheduler.ByKind["start"] == 0 {
		t.Errorf("no start decisions recorded: %v", s.Scheduler.ByKind)
	}
	// StripWall must leave only deterministic fields.
	stripped := s.StripWall()
	if stripped.Wall != (telemetry.WallStats{}) || stripped.Mem != (telemetry.MemStats{}) {
		t.Error("StripWall left wall/mem data behind")
	}
	if stripped.Kernel != s.Kernel {
		t.Error("StripWall altered deterministic counters")
	}
}

// BenchmarkRunTelemetryOff is the regression guard for the disabled
// telemetry path: the hooks compile to nil-receiver no-ops, so this
// benchmark must stay within noise of the pre-telemetry baseline.
func BenchmarkRunTelemetryOff(b *testing.B) {
	benchmarkRun(b, Options{})
}

// BenchmarkRunTelemetryChrome measures the full-tracing overhead for
// comparison (expected to cost, but not to change results).
func BenchmarkRunTelemetryChrome(b *testing.B) {
	var sink bytes.Buffer
	tracer := NewTracer(NewChromeTraceSink(&sink))
	defer tracer.Close()
	benchmarkRun(b, Options{Telemetry: tracer})
}

func benchmarkRun(b *testing.B, opts Options) {
	b.Helper()
	wl, err := GenerateWorkload(WorkloadConfig{
		Seed: 11, Count: 60,
		Arrival:      job.Arrival{Kind: job.ArrivalPoisson, Rate: 0.05},
		Nodes:        [2]int{1, 16},
		MachineNodes: 32,
		NodeSpeed:    100e9,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{
			Platform:  HomogeneousPlatform("bench", 32, 100e9, 10e9, 40e9, 40e9),
			Workload:  wl,
			Algorithm: NewAdaptive(),
			Options:   opts,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
