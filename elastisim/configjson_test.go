package elastisim

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// fullConfigDoc exercises every serializable field class: tree topology
// with tapered uplinks, burst buffer, a platform-level failure model, a
// top-level failure override with scripted outages, all four job types,
// expression and vector models, args, dependencies, checkpointing, users,
// and every engine option.
const fullConfigDoc = `{
  "platform": {
    "name": "roundtrip",
    "nodes": [
      {"count": 12, "speed": "100G"},
      {"count": 4, "speed": "200G", "name_prefix": "fat"}
    ],
    "network": {
      "topology": "tree",
      "link_bandwidth": "10G",
      "group_size": 4,
      "uplink_bandwidth": "25G",
      "backbone_bandwidth": "100G",
      "latency": 1e-6
    },
    "pfs": {"read_bandwidth": "80G", "write_bandwidth": "60G"},
    "burst_buffer": {"kind": "node_local", "read_bandwidth": "4G", "write_bandwidth": "4G"},
    "failures": {"model": "weibull", "seed": 3, "mtbf": "50k", "mttr": 600, "shape": 1.5, "recovery": "requeue"}
  },
  "workload": {
    "name": "rt-jobs",
    "jobs": [
      {
        "name": "pre", "type": "rigid", "submit_time": 0, "num_nodes": 2,
        "walltime": 1800, "user": "alice",
        "args": {"flops": "10T"},
        "phases": [{"tasks": [{"type": "compute", "flops": "flops / num_nodes"}]}]
      },
      {
        "name": "solver", "type": "malleable", "submit_time": 30,
        "num_nodes_min": 2, "num_nodes_max": 8, "walltime": 7200, "user": "bob",
        "args": {"io": "8G", "w": "2T"},
        "reconfig_cost": "0.5 + io/(num_nodes_new*10G)",
        "checkpoint_interval": "300",
        "dependencies": ["pre"],
        "phases": [
          {"name": "load", "tasks": [{"type": "read", "target": "bb", "bytes": "io"}]},
          {"name": "iter", "iterations": 10, "scheduling_point": true, "tasks": [
            {"type": "compute", "name": "work", "flops": {"2": 1e12, "4": 6e11, "8": 4e11}},
            {"type": "comm", "pattern": "allreduce", "bytes": "64M"}
          ]},
          {"name": "store", "tasks": [{"type": "write", "target": "pfs", "bytes": "io"}]}
        ]
      },
      {
        "name": "molded", "type": "moldable", "submit_time": 60,
        "num_nodes_min": 1, "num_nodes_max": 4,
        "phases": [{"tasks": [{"type": "compute", "flops": "1T / num_nodes"}]}]
      },
      {
        "name": "grower", "type": "evolving", "submit_time": 90,
        "num_nodes_min": 1, "num_nodes_max": 6,
        "phases": [
          {"tasks": [{"type": "compute", "flops": "5T / num_nodes"}]},
          {"tasks": [{"type": "evolving_request", "nodes": "4"}]},
          {"tasks": [{"type": "compute", "flops": "5T / num_nodes"}, {"type": "delay", "seconds": "1.5"}]}
        ]
      }
    ]
  },
  "algorithm": "adaptive",
  "failures": {
    "model": "trace",
    "outages": [{"node": 1, "down": 500, "up": 900}, {"node": 5, "down": 1200, "up": 1500}],
    "recovery": "shrink",
    "max_requeues": 3
  },
  "options": {
    "invocation_interval": 30,
    "disable_event_driven": false,
    "fairness": "equal-split",
    "trace": true,
    "trace_tasks": true,
    "horizon": "100k",
    "disable_fast_path": true,
    "force_full_solve": true
  }
}`

// TestConfigRoundTrip pins unmarshal → marshal → unmarshal fidelity: a
// config POSTed to the daemon must mean exactly the same thing as the one
// re-serialized from it. Semantics are compared three ways: the marshaled
// form reaches a fixpoint, the structural pieces compare equal, and — the
// strongest check — running both configs produces byte-identical canonical
// result documents.
func TestConfigRoundTrip(t *testing.T) {
	cfg1, err := ParseConfig([]byte(fullConfigDoc))
	if err != nil {
		t.Fatalf("parse original: %v", err)
	}
	m1, err := MarshalConfig(cfg1)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	cfg2, err := ParseConfig(m1)
	if err != nil {
		t.Fatalf("parse re-marshaled config: %v\ndoc:\n%s", err, m1)
	}
	m2, err := MarshalConfig(cfg2)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if !bytes.Equal(m1, m2) {
		t.Errorf("marshal not a fixpoint:\nfirst:\n%s\nsecond:\n%s", m1, m2)
	}

	// Structural equality of the pieces with comparable representations.
	if !reflect.DeepEqual(cfg1.Platform, cfg2.Platform) {
		t.Errorf("platform spec changed across round-trip:\n%+v\n%+v", cfg1.Platform, cfg2.Platform)
	}
	if !reflect.DeepEqual(cfg1.Failures, cfg2.Failures) {
		t.Errorf("failure override changed across round-trip:\n%+v\n%+v", cfg1.Failures, cfg2.Failures)
	}
	if cfg1.Options != cfg2.Options {
		t.Errorf("options changed across round-trip:\n%+v\n%+v", cfg1.Options, cfg2.Options)
	}
	if cfg1.Algorithm.Name() != cfg2.Algorithm.Name() {
		t.Errorf("algorithm changed: %q vs %q", cfg1.Algorithm.Name(), cfg2.Algorithm.Name())
	}
	w1, err := cfg1.Workload.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	w2, err := cfg2.Workload.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w1, w2) {
		t.Errorf("workload changed across round-trip:\n%s\nvs\n%s", w1, w2)
	}

	// Identical semantics, the executable definition: both configs must
	// simulate to byte-identical canonical results.
	res1, err := Run(cfg1)
	if err != nil {
		t.Fatalf("run original: %v", err)
	}
	res2, err := Run(cfg2)
	if err != nil {
		t.Fatalf("run round-tripped: %v", err)
	}
	var d1, d2 bytes.Buffer
	if err := res1.WriteJSON(&d1); err != nil {
		t.Fatal(err)
	}
	if err := res2.WriteJSON(&d2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1.Bytes(), d2.Bytes()) {
		t.Errorf("round-tripped config simulates differently:\n%s\nvs\n%s", d1.String(), d2.String())
	}
}

// TestConfigRoundTripAllAlgorithms pins the factory-key reverse lookup:
// every built-in algorithm — including composed ones whose display name
// differs from the factory key ("packed" builds "packed+easy") — must
// survive marshal → parse.
func TestConfigRoundTripAllAlgorithms(t *testing.T) {
	for _, name := range AlgorithmNames() {
		algo, err := NewAlgorithm(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Platform:  HomogeneousPlatform("p", 8, 100e9, 10e9, 40e9, 40e9),
			Workload:  mustTinyWorkload(t),
			Algorithm: algo,
		}
		data, err := MarshalConfig(cfg)
		if err != nil {
			t.Errorf("algorithm %q: marshal: %v", name, err)
			continue
		}
		back, err := ParseConfig(data)
		if err != nil {
			t.Errorf("algorithm %q: parse: %v", name, err)
			continue
		}
		if back.Algorithm.Name() != algo.Name() {
			t.Errorf("algorithm %q round-tripped to %q", algo.Name(), back.Algorithm.Name())
		}
	}
}

func mustTinyWorkload(t *testing.T) *Workload {
	t.Helper()
	wl, err := GenerateWorkload(WorkloadConfig{
		Count: 3, Seed: 1, Nodes: [2]int{1, 4}, MachineNodes: 8, NodeSpeed: 100e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return wl
}

// TestParseConfigErrors pins the failure modes that protect API users:
// unknown top-level fields, unknown fairness, unknown algorithms, and
// missing pieces are loud errors, never silent defaults.
func TestParseConfigErrors(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"unknown field", `{"platfrom": {}}`, "unknown field"},
		{"missing platform", `{"workload": {"jobs": []}}`, "platform"},
		{"missing workload", `{"platform": {"name": "p", "nodes": [{"count": 1, "speed": 1e9}], "network": {"link_bandwidth": 1e9}}}`, "workload"},
		{"bad algorithm", fullConfigSnippet(`"algorithm": "quantum"`), "unknown algorithm"},
		{"bad fairness", fullConfigSnippet(`"options": {"fairness": "round-robin"}`), "fairness"},
		{"negative horizon", fullConfigSnippet(`"options": {"horizon": -5}`), "horizon"},
	}
	for _, tc := range cases {
		_, err := ParseConfig([]byte(tc.doc))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}

	// Custom algorithms cannot be serialized.
	cfg := Config{
		Platform:  HomogeneousPlatform("p", 4, 100e9, 10e9, 40e9, 40e9),
		Workload:  mustTinyWorkload(t),
		Algorithm: customAlgo{},
	}
	if _, err := MarshalConfig(cfg); err == nil || !strings.Contains(err.Error(), "not a built-in") {
		t.Errorf("custom algorithm marshal err = %v, want not-a-built-in error", err)
	}
}

func fullConfigSnippet(extra string) string {
	return `{
  "platform": {"name": "p", "nodes": [{"count": 4, "speed": 1e11}], "network": {"link_bandwidth": 1e10}},
  "workload": {"jobs": [{"name": "j", "type": "rigid", "submit_time": 0, "num_nodes": 1,
    "phases": [{"tasks": [{"type": "compute", "flops": 1e12}]}]}]},
  ` + extra + `
}`
}

type customAlgo struct{ Algorithm }

func (customAlgo) Name() string { return "my-custom-policy" }
